// Package imagetag implements the image tagging (IT) application of the
// paper's Section 5.2: Flickr-style images with candidate tag sets
// (existing tags plus embedded noise tags) that workers choose from —
// simulated here with synthetic images, since the Flickr corpus is not
// available offline.
//
// Each synthetic image carries a numeric feature vector derived from its
// true tag's embedding plus Gaussian noise. Humans (the crowd simulator)
// judge images directly via their accuracy; machines (package alipr) see
// only the feature vectors, which bounds what clustering-based annotation
// can recover — reproducing the machine-vs-crowd gap of Figure 17.
package imagetag

import (
	"fmt"
	"math"

	"cdas/internal/crowd"
	"cdas/internal/randx"
)

// FeatureDim is the dimensionality of image feature vectors.
const FeatureDim = 8

// Figure17Subjects are the five Flickr query subjects of Figure 17.
var Figure17Subjects = []string{"apple", "bride", "flying", "sun", "twilight"}

// subjectTags maps each subject to its plausible tag vocabulary (the
// "Flickr tags" of the paper); the first tag plays no special role.
var subjectTags = map[string][]string{
	"apple":    {"fruit", "orchard", "cider", "macbook", "pie", "harvest"},
	"bride":    {"wedding", "gown", "bouquet", "ceremony", "veil", "church"},
	"flying":   {"airplane", "bird", "kite", "clouds", "wings", "glider"},
	"sun":      {"sunset", "sunrise", "beach", "summer", "sky", "rays"},
	"twilight": {"dusk", "evening", "stars", "moon", "horizon", "lamps"},
	"city":     {"skyline", "street", "traffic", "subway", "neon", "rooftop"},
	"forest":   {"trees", "moss", "trail", "ferns", "canopy", "creek"},
	"water":    {"lake", "river", "waves", "reflection", "waterfall", "pond"},
}

// noiseTags are never true for any image; the paper embeds such noise
// tags among the candidates.
var noiseTags = []string{
	"quantum", "spreadsheet", "tractor", "violin", "parliament",
	"algebra", "sausage", "chessboard", "thermostat", "walrus",
}

// Subjects returns all generatable subjects, Figure 17's five first.
func Subjects() []string {
	out := append([]string(nil), Figure17Subjects...)
	out = append(out, "city", "forest", "water")
	return out
}

// Image is one synthetic Flickr-style image.
type Image struct {
	ID         string
	Subject    string
	TrueTag    string
	Candidates []string // TrueTag + distractors + noise tags, shuffled
	Features   []float64
}

// Config parameterises generation.
type Config struct {
	Seed             uint64
	Subjects         []string // default: Subjects()
	ImagesPerSubject int      // default 20 (Figure 17's top-20 per query)
	CandidateCount   int      // candidate tags per image; default 8
	// FeatureNoise is the per-dimension Gaussian noise added to the true
	// tag's embedding. Default 1.0 — enough signal for clustering to beat
	// chance, little enough to cap it near ALIPR's 12–30%.
	FeatureNoise float64
}

func (c Config) withDefaults() Config {
	if len(c.Subjects) == 0 {
		c.Subjects = Subjects()
	}
	if c.ImagesPerSubject == 0 {
		c.ImagesPerSubject = 20
	}
	if c.CandidateCount == 0 {
		c.CandidateCount = 8
	}
	if c.FeatureNoise == 0 {
		c.FeatureNoise = 1.0
	}
	return c
}

// Validate reports configuration errors after defaulting.
func (c Config) Validate() error {
	c = c.withDefaults()
	for _, s := range c.Subjects {
		if _, ok := subjectTags[s]; !ok {
			return fmt.Errorf("imagetag: unknown subject %q", s)
		}
	}
	if c.ImagesPerSubject < 0 {
		return fmt.Errorf("imagetag: images per subject must be >= 0")
	}
	if c.CandidateCount < 2 {
		return fmt.Errorf("imagetag: need >= 2 candidate tags, got %d", c.CandidateCount)
	}
	if c.FeatureNoise < 0 {
		return fmt.Errorf("imagetag: feature noise must be >= 0")
	}
	return nil
}

// Generate produces the image corpus deterministically under Config.Seed.
func Generate(cfg Config) ([]Image, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := randx.New(cfg.Seed)
	images := make([]Image, 0, len(cfg.Subjects)*cfg.ImagesPerSubject)
	for _, subject := range cfg.Subjects {
		subjRNG := rng.Split("subject/" + subject)
		vocab := subjectTags[subject]
		for i := 0; i < cfg.ImagesPerSubject; i++ {
			img := generateOne(subjRNG, cfg, subject, vocab)
			img.ID = fmt.Sprintf("%s#%03d", subject, i)
			images = append(images, img)
		}
	}
	return images, nil
}

func generateOne(rng *randx.Source, cfg Config, subject string, vocab []string) Image {
	trueTag := randx.Choice(rng, vocab)

	// Candidates: the true tag, distractors from the subject vocabulary,
	// and noise tags to fill up (the paper: "candidate tags include
	// Flickr tags and some embedded noise tags").
	candidates := []string{trueTag}
	for _, t := range vocab {
		if len(candidates) >= cfg.CandidateCount-2 {
			break
		}
		if t != trueTag {
			candidates = append(candidates, t)
		}
	}
	for _, idx := range rng.SampleWithoutReplacement(len(noiseTags), min(cfg.CandidateCount-len(candidates), len(noiseTags))) {
		candidates = append(candidates, noiseTags[idx])
	}
	randx.Shuffle(rng, candidates)

	features := TagEmbedding(trueTag)
	for d := range features {
		features[d] += rng.Normal(0, cfg.FeatureNoise)
	}
	return Image{Subject: subject, TrueTag: trueTag, Candidates: candidates, Features: features}
}

// TagEmbedding returns the deterministic unit-norm embedding of a tag:
// the "visual signature" the feature generator perturbs. Distinct tags
// map to (almost surely) distinct directions.
func TagEmbedding(tag string) []float64 {
	h := uint64(1469598103934665603)
	for _, c := range tag {
		h = (h ^ uint64(c)) * 1099511628211
	}
	rng := randx.New(h)
	v := make([]float64, FeatureDim)
	norm := 0.0
	for d := range v {
		v[d] = rng.NormFloat64()
		norm += v[d] * v[d]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		v[0] = 1
		return v
	}
	for d := range v {
		v[d] /= norm
	}
	return v
}

// Question converts an image into the crowd question of the IT job:
// choose the correct tag among the candidates. Image tagging is easier
// for humans than sentiment reading, hence the small difficulty.
func (img Image) Question() crowd.Question {
	return crowd.Question{
		ID:         img.ID,
		Text:       "Select the tag that describes image " + img.ID,
		Domain:     append([]string(nil), img.Candidates...),
		Truth:      img.TrueTag,
		Difficulty: 0.05,
	}
}

// Split partitions images into those whose subject is in test and the
// rest, mirroring tsa.SplitByMovie for the baseline protocol.
func Split(images []Image, testSubjects []string) (test, train []Image) {
	isTest := make(map[string]bool, len(testSubjects))
	for _, s := range testSubjects {
		isTest[s] = true
	}
	for _, img := range images {
		if isTest[img.Subject] {
			test = append(test, img)
		} else {
			train = append(train, img)
		}
	}
	return test, train
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
