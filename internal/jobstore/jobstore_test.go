package jobstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l
}

func appendAll(t *testing.T, l *Log, recs ...string) {
	t.Helper()
	for _, r := range recs {
		if _, err := l.Append([]byte(r)); err != nil {
			t.Fatalf("Append(%q): %v", r, err)
		}
	}
}

func wantEntries(t *testing.T, l *Log, want ...string) {
	t.Helper()
	got := l.Entries()
	if len(got) != len(want) {
		t.Fatalf("recovered %d entries, want %d: %q vs %q", len(got), len(want), got, want)
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Errorf("entry %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	appendAll(t, l, "one", "two", "three")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir)
	defer r.Close()
	wantEntries(t, r, "one", "two", "three")
	if r.TailTruncated() {
		t.Error("clean WAL reported a truncated tail")
	}
	if r.Seq() != 3 {
		t.Errorf("Seq = %d, want 3", r.Seq())
	}
}

func TestAppendAfterRecoveryContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	appendAll(t, l, "a", "b")
	l.Close()

	r := mustOpen(t, dir)
	appendAll(t, r, "c")
	r.Close()

	r2 := mustOpen(t, dir)
	defer r2.Close()
	wantEntries(t, r2, "a", "b", "c")
	if r2.Seq() != 3 {
		t.Errorf("Seq = %d, want 3", r2.Seq())
	}
}

// TestTruncatedTail simulates kill -9 mid-Append: the last frame is cut
// short. Recovery must keep every record whose Append returned and drop
// only the torn tail.
func TestTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	appendAll(t, l, "committed-1", "committed-2", "torn")
	l.Close()

	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < headerSize+len("torn"); cut += 3 {
		if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r := mustOpen(t, dir)
		wantEntries(t, r, "committed-1", "committed-2")
		if !r.TailTruncated() {
			t.Errorf("cut=%d: torn tail not reported", cut)
		}
		// The truncated log must stay appendable and consistent.
		appendAll(t, r, "after-crash")
		r.Close()
		r2 := mustOpen(t, dir)
		wantEntries(t, r2, "committed-1", "committed-2", "after-crash")
		r2.Close()
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorruptedTail flips bytes in the final record: the checksum must
// catch it and recovery must keep all earlier committed records.
func TestCorruptedTail(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	appendAll(t, l, "keep-1", "keep-2", "garbled")
	l.Close()

	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := len(data) - headerSize - len("garbled")
	for _, off := range []int{lastFrame, lastFrame + 5, lastFrame + headerSize, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xff
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		r := mustOpen(t, dir)
		wantEntries(t, r, "keep-1", "keep-2")
		if !r.TailTruncated() {
			t.Errorf("offset %d: corruption not reported", off)
		}
		r.Close()
	}
}

// TestCorruptionMidLogDropsSuffix: corruption in the middle of the WAL
// ends the committed prefix there; later (unreachable) records are
// dropped rather than mis-parsed.
func TestCorruptionMidLogDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	appendAll(t, l, "first", "second", "third")
	l.Close()

	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's payload.
	secondPayload := (headerSize + len("first")) + headerSize
	data[secondPayload] ^= 0x55
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir)
	defer r.Close()
	wantEntries(t, r, "first")
	if !r.TailTruncated() {
		t.Error("mid-log corruption not reported")
	}
}

func TestSnapshotCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	appendAll(t, l, "a", "b")
	if err := l.WriteSnapshot([]byte("state-after-b")); err != nil {
		t.Fatal(err)
	}
	if n := l.AppendsSinceSnapshot(); n != 0 {
		t.Errorf("AppendsSinceSnapshot = %d after snapshot, want 0", n)
	}
	appendAll(t, l, "c")
	l.Close()

	r := mustOpen(t, dir)
	defer r.Close()
	snap, seq := r.Snapshot()
	if string(snap) != "state-after-b" || seq != 2 {
		t.Errorf("Snapshot = %q@%d, want state-after-b@2", snap, seq)
	}
	wantEntries(t, r, "c")
	if r.Seq() != 3 {
		t.Errorf("Seq = %d, want 3", r.Seq())
	}
}

// TestSnapshotCrashWindow simulates a crash after the snapshot rename
// but before the WAL truncation: the stale WAL records are at or below
// the snapshot watermark and must not be replayed twice.
func TestSnapshotCrashWindow(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	appendAll(t, l, "a", "b")
	l.Close()
	wal, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir)
	if err := l2.WriteSnapshot([]byte("covers-a-b")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	// Restore the pre-truncation WAL: the crash left it behind.
	if err := os.WriteFile(filepath.Join(dir, walName), wal, 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir)
	defer r.Close()
	snap, seq := r.Snapshot()
	if string(snap) != "covers-a-b" || seq != 2 {
		t.Fatalf("Snapshot = %q@%d, want covers-a-b@2", snap, seq)
	}
	wantEntries(t, r) // nothing replays: both records are covered
	if r.Seq() != 2 {
		t.Errorf("Seq = %d, want 2", r.Seq())
	}
	// New appends continue past the watermark.
	appendAll(t, r, "c")
	if r.Seq() != 3 {
		t.Errorf("Seq after append = %d, want 3", r.Seq())
	}
}

func TestCorruptSnapshotIsLoud(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	appendAll(t, l, "a")
	if err := l.WriteSnapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	path := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorruptSnapshot) {
		t.Errorf("Open on corrupt snapshot: err = %v, want ErrCorruptSnapshot", err)
	}
}

func TestEmptyPayloadsAndBinaryRecords(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	bin := bytes.Repeat([]byte{0x00, 0xff, 0x13}, 100)
	if _, err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(bin); err != nil {
		t.Fatal(err)
	}
	l.Close()
	r := mustOpen(t, dir)
	defer r.Close()
	got := r.Entries()
	if len(got) != 2 || len(got[0]) != 0 || !bytes.Equal(got[1], bin) {
		t.Errorf("binary round trip failed: %q", got)
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	const goroutines, per = 8, 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	l.Close()
	r := mustOpen(t, dir)
	defer r.Close()
	if got := len(r.Entries()); got != goroutines*per {
		t.Errorf("recovered %d records, want %d", got, goroutines*per)
	}
	if r.Seq() != goroutines*per {
		t.Errorf("Seq = %d, want %d", r.Seq(), goroutines*per)
	}
}

// TestDoubleOpenLocked: a second live opener must fail fast instead of
// interleaving frames with the first.
func TestDoubleOpenLocked(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	defer l.Close()
	if _, err := Open(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open err = %v, want ErrLocked", err)
	}
	// Releasing the first handle frees the store.
	l.Close()
	r := mustOpen(t, dir)
	r.Close()
}

func TestClosedLogRejectsWrites(t *testing.T) {
	l := mustOpen(t, t.TempDir())
	l.Close()
	if _, err := l.Append([]byte("x")); err == nil {
		t.Error("Append on closed log succeeded")
	}
	if err := l.WriteSnapshot([]byte("x")); err == nil {
		t.Error("WriteSnapshot on closed log succeeded")
	}
}
