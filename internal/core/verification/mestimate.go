package verification

import (
	"math"

	"cdas/internal/stats"
)

// DefaultEpsilon is the noise-pruning threshold ε = 0.05 the paper adopts
// from Fisher's exact test (Section 4.1) when estimating the effective
// answer-domain size m.
const DefaultEpsilon = 0.05

// EstimateM estimates the effective answer-domain size m after observing
// k distinct answers, per Theorem 5: m must be large enough that drawing k
// distinct answers out of m is not a rare event (probability > ε).
//
// Theorem 5 combines two lower bounds:
//
//	Lemma 1: m > (k-1) / (H_{k-1} - (k-1)·(εk)^{1/(k-1)})
//	Lemma 2: m > (k-1) / (1 - k·ε^{1/k})
//
// A note on the bounds' character (visible in their derivations): Lemma 1
// relaxes the exact condition ε < C(m,k)/m^k with an AM–GM upper bound, so
// it is a necessary condition on m; Lemma 2 relaxes it with a worst-term
// lower bound, so it is sufficient. The exact condition itself is
// infeasible for k with 1/k! < ε (sup_m C(m,k)/m^k = 1/k!), i.e. k >= 4 at
// the default ε = 0.05; there both lemma denominators are <= 0 or nearly
// so. Degenerate bounds (denominator <= 0) are skipped, exactly as one
// must when applying Theorem 5. The result is always at least max(k, 2) —
// the domain must contain every observed answer, and a domain of one
// answer admits no disagreement to verify.
func EstimateM(k int, eps float64) int {
	if eps <= 0 || eps >= 1 || math.IsNaN(eps) {
		eps = DefaultEpsilon
	}
	minM := k
	if minM < 2 {
		minM = 2
	}
	if k < 2 {
		return minM
	}
	km1 := float64(k - 1)

	best := 0.0
	// Lemma 1.
	if den := stats.Harmonic(k-1) - km1*math.Pow(eps*float64(k), 1/km1); den > 0 {
		best = math.Max(best, km1/den)
	}
	// Lemma 2.
	if den := 1 - float64(k)*math.Pow(eps, 1/float64(k)); den > 0 {
		best = math.Max(best, km1/den)
	}
	m := int(math.Floor(best)) + 1 // strict inequality: smallest integer > bound
	if m < minM {
		m = minM
	}
	return m
}
