package jobs

import (
	"strings"
	"testing"
	"time"
)

func continuousTestJob(name string) Job {
	j := testJob(name)
	j.Kind = KindContinuous
	j.Stream = &StreamSpec{Items: 24, Rate: 1, SourceSeed: 5, WindowCapacity: 5, MaxBacklog: 10}
	return j
}

// TestStreamMarkCommit pins the in-memory mark contract: marks start
// absent, round-trip through CommitStreamMark/StreamMarkFor, may
// re-commit the same window (an in-flight window replayed after a
// crash), and never regress.
func TestStreamMarkCommit(t *testing.T) {
	s, err := OpenService(ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Submit(continuousTestJob("feed")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.StreamMarkFor("feed"); ok {
		t.Fatal("mark present before any commit")
	}
	mark := StreamMark{Window: 0, Spent: 0.25, Seen: 12, Matched: 10, Dropped: 1, Degraded: 1}
	if err := s.CommitStreamMark("feed", mark); err != nil {
		t.Fatal(err)
	}
	got, ok := s.StreamMarkFor("feed")
	if !ok || got != mark {
		t.Fatalf("StreamMarkFor = %+v, %v, want %+v", got, ok, mark)
	}
	// Same window again is allowed (at-least-once close), higher wins.
	if err := s.CommitStreamMark("feed", mark); err != nil {
		t.Fatalf("re-commit of the same window: %v", err)
	}
	mark.Window, mark.Spent = 1, 0.5
	if err := s.CommitStreamMark("feed", mark); err != nil {
		t.Fatal(err)
	}
	// A regressing window is a runner bug and must be rejected without
	// clobbering the committed mark.
	err = s.CommitStreamMark("feed", StreamMark{Window: 0})
	if err == nil || !strings.Contains(err.Error(), "regresses") {
		t.Fatalf("regressing commit err = %v", err)
	}
	if got, _ := s.StreamMarkFor("feed"); got != mark {
		t.Fatalf("mark after rejected regression = %+v, want %+v", got, mark)
	}
}

// TestStreamMarkRecovery pins durability on both engines: committed
// marks survive close/reopen exactly, uncommitted progress does not
// exist, and marks for distinct jobs stay distinct.
func TestStreamMarkRecovery(t *testing.T) {
	for _, engine := range []string{EngineWAL, EngineLSM} {
		t.Run(engine, func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenService(ServiceConfig{Dir: dir, Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			marks := map[string]StreamMark{
				"feed/a": {Window: 3, Spent: 1.25, Seen: 48, Matched: 40, Dropped: 5, Degraded: 3},
				"feed-b": {Window: 0, Spent: 0.1, Seen: 7, Matched: 7},
			}
			for name, mark := range marks {
				if _, err := s.Submit(continuousTestJob(name)); err != nil {
					t.Fatal(err)
				}
				// Walk the mark up so recovery sees only the newest record.
				for w := 0; w <= mark.Window; w++ {
					step := mark
					step.Window = w
					if err := s.CommitStreamMark(name, step); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := OpenService(ServiceConfig{Dir: dir, Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			for name, want := range marks {
				got, ok := r.StreamMarkFor(name)
				if !ok || got != want {
					t.Errorf("%s: recovered mark = %+v, %v, want %+v", name, got, ok, want)
				}
			}
			if _, ok := r.StreamMarkFor("ghost"); ok {
				t.Error("mark recovered for a job that never committed one")
			}
			// New commits keep working after recovery.
			next := marks["feed/a"]
			next.Window++
			if err := r.CommitStreamMark("feed/a", next); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStreamSpecValidate sweeps the spec's reject conditions and the
// submit-time coupling between Kind and Stream.
func TestStreamSpecValidate(t *testing.T) {
	if err := (StreamSpec{Items: 10, Rate: 2, TargetFill: time.Second, Lateness: time.Second}).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for name, sp := range map[string]StreamSpec{
		"negative lateness":    {Lateness: -time.Second},
		"negative target fill": {TargetFill: -time.Second},
		"negative capacity":    {WindowCapacity: -1},
		"negative backlog":     {MaxBacklog: -1},
		"negative items":       {Items: -1},
		"negative rate":        {Rate: -1},
	} {
		if err := sp.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", name)
		}
	}

	s, err := OpenService(ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Continuous without a spec, and a spec on a batch kind, both fail.
	j := testJob("bare")
	j.Kind = KindContinuous
	if _, err := s.Submit(j); err == nil || !strings.Contains(err.Error(), "stream spec") {
		t.Errorf("continuous without spec: %v", err)
	}
	j = testJob("batchspec")
	j.Stream = &StreamSpec{Items: 1}
	if _, err := s.Submit(j); err == nil || !strings.Contains(err.Error(), "only valid") {
		t.Errorf("stream spec on batch kind: %v", err)
	}
	j = continuousTestJob("badspec")
	j.Stream.Rate = -2
	if _, err := s.Submit(j); err == nil || !strings.Contains(err.Error(), "rate") {
		t.Errorf("invalid spec at submit: %v", err)
	}
}
