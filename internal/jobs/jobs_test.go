package jobs

import (
	"errors"
	"testing"
	"time"
)

func validQuery() Query {
	return Query{
		Keywords:         []string{"iPhone4S", "iPhone 4S"},
		RequiredAccuracy: 0.95,
		Domain:           []string{"Best Ever", "Good", "Not Satisfied"},
		Start:            time.Date(2011, 10, 14, 0, 0, 0, 0, time.UTC),
		Window:           10 * 24 * time.Hour,
	}
}

func TestQueryValidate(t *testing.T) {
	if err := validQuery().Validate(); err != nil {
		t.Errorf("paper's example query rejected: %v", err)
	}
	bad := []func(*Query){
		func(q *Query) { q.Keywords = nil },
		func(q *Query) { q.RequiredAccuracy = 0 },
		func(q *Query) { q.RequiredAccuracy = 1 },
		func(q *Query) { q.Domain = []string{"only"} },
		func(q *Query) { q.Domain = []string{"a", "a"} },
		func(q *Query) { q.Window = 0 },
	}
	for i, mutate := range bad {
		q := validQuery()
		mutate(&q)
		if err := q.Validate(); err == nil {
			t.Errorf("invalid query %d accepted", i)
		}
	}
}

func TestQueryMatches(t *testing.T) {
	q := validQuery()
	inWindow := q.Start.Add(24 * time.Hour)
	cases := []struct {
		text string
		at   time.Time
		want bool
	}{
		{"loving my new iphone4s!!", inWindow, true},
		{"the iPhone 4S camera is great", inWindow, true},
		{"android forever", inWindow, false},
		{"iphone4s before the window", q.Start.Add(-time.Hour), false},
		{"iphone4s at window end", q.Start.Add(q.Window), false},
		{"iphone4s at window start", q.Start, true},
	}
	for _, c := range cases {
		if got := q.Matches(c.text, c.at); got != c.want {
			t.Errorf("Matches(%q, %v) = %v, want %v", c.text, c.at, got, c.want)
		}
	}
}

func TestRegisterTSAPlan(t *testing.T) {
	m := NewManager()
	plan, err := m.Register(Job{Name: "iphone", Kind: KindTSA, Query: validQuery()})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.ComputerTasks) == 0 || len(plan.HumanTasks) == 0 {
		t.Fatal("TSA plan must have both computer and human tasks")
	}
	for _, task := range plan.ComputerTasks {
		if task.Human {
			t.Errorf("computer task %q flagged human", task.Name)
		}
	}
	for _, task := range plan.HumanTasks {
		if !task.Human {
			t.Errorf("human task %q not flagged human", task.Name)
		}
	}
}

func TestRegisterImageTagPlan(t *testing.T) {
	m := NewManager()
	plan, err := m.Register(Job{Name: "flickr", Kind: KindImageTag, Query: validQuery()})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.HumanTasks) != 1 || plan.HumanTasks[0].Name != "select-tags" {
		t.Errorf("unexpected IT human tasks: %+v", plan.HumanTasks)
	}
}

func TestRegisterDuplicate(t *testing.T) {
	m := NewManager()
	job := Job{Name: "j", Kind: KindTSA, Query: validQuery()}
	if _, err := m.Register(job); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(job); !errors.Is(err, ErrDuplicateJob) {
		t.Errorf("duplicate err = %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	m := NewManager()
	if _, err := m.Register(Job{Kind: KindTSA, Query: validQuery()}); err == nil {
		t.Error("nameless job accepted")
	}
	q := validQuery()
	q.Keywords = nil
	if _, err := m.Register(Job{Name: "x", Kind: KindTSA, Query: q}); err == nil {
		t.Error("invalid query accepted")
	}
	if _, err := m.Register(Job{Name: "y", Kind: Kind("nope"), Query: validQuery()}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestGetUnregisterJobs(t *testing.T) {
	m := NewManager()
	if _, err := m.Register(Job{Name: "b", Kind: KindTSA, Query: validQuery()}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(Job{Name: "a", Kind: KindCustom, Query: validQuery()}); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get("b"); !ok {
		t.Error("Get(b) failed")
	}
	list := m.Jobs()
	if len(list) != 2 || list[0].Name != "a" || list[1].Name != "b" {
		t.Errorf("Jobs = %+v", list)
	}
	if err := m.Unregister("a"); err != nil {
		t.Errorf("Unregister(a) = %v", err)
	}
	if err := m.Unregister("a"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("double unregister err = %v", err)
	}
	if _, ok := m.Get("a"); ok {
		t.Error("a still present after unregister")
	}
}

func TestCustomPlanEmpty(t *testing.T) {
	m := NewManager()
	plan, err := m.Register(Job{Name: "c", Kind: KindCustom, Query: validQuery()})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.ComputerTasks) != 0 || len(plan.HumanTasks) != 0 {
		t.Error("custom plan should start empty")
	}
}
