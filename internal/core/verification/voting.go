package verification

import "sort"

// The two voting baselines of Section 5's evaluation. Both treat all
// workers as equally trustworthy and can fail to produce an answer — the
// "no answer" outcomes measured in Figures 9 and 10.

// HalfVoting accepts answer r only if at least ceil(n/2) of the n workers
// voted for it (the CrowdDB strategy). ok is false when no answer reaches
// half of the votes.
func HalfVoting(votes []Vote) (answer string, ok bool) {
	if len(votes) == 0 {
		return "", false
	}
	counts := tally(votes)
	need := (len(votes) + 1) / 2
	for a, c := range counts {
		if c >= need {
			return a, true
		}
	}
	return "", false
}

// MajorityVoting accepts the answer with strictly more votes than every
// other answer. ok is false on a tie for first place.
func MajorityVoting(votes []Vote) (answer string, ok bool) {
	if len(votes) == 0 {
		return "", false
	}
	counts := tally(votes)
	best, bestCount, tied := "", -1, false
	// Iterate answers in sorted order for determinism.
	answers := make([]string, 0, len(counts))
	for a := range counts {
		answers = append(answers, a)
	}
	sort.Strings(answers)
	for _, a := range answers {
		switch c := counts[a]; {
		case c > bestCount:
			best, bestCount, tied = a, c, false
		case c == bestCount:
			tied = true
		}
	}
	if tied {
		return "", false
	}
	return best, true
}

// VoteCounts returns the number of votes per answer.
func VoteCounts(votes []Vote) map[string]int { return tally(votes) }

func tally(votes []Vote) map[string]int {
	counts := make(map[string]int, 4)
	for _, v := range votes {
		counts[v.Answer]++
	}
	return counts
}
