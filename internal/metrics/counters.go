// Operational counters for the running service, alongside the package's
// evaluation metrics: the job service and dispatcher publish lifecycle
// counts here and httpapi exposes them at /api/metrics.
package metrics

import (
	"sort"
	"sync"
)

// Registry is a set of named monotonic counters. It is safe for
// concurrent use, and every method is nil-receiver safe so callers can
// instrument unconditionally and let wiring decide whether a registry
// exists.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]int64)}
}

// Inc adds 1 to the named counter.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Add adds delta to the named counter, creating it at zero first.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] += delta
}

// Get returns the named counter's value (zero when absent).
func (r *Registry) Get(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Snapshot copies every counter.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return map[string]int64{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Names lists the registered counters, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters))
	for k := range r.counters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Counter names published by the job service and dispatcher.
const (
	CounterJobsSubmitted = "jobs_submitted"
	CounterJobsStarted   = "jobs_started"
	CounterJobsCompleted = "jobs_completed"
	CounterJobsFailed    = "jobs_failed"
	CounterJobsRetried   = "jobs_retried"
	CounterJobsCancelled = "jobs_cancelled"
	CounterJobsResumed   = "jobs_resumed"
	CounterJobsParked    = "jobs_parked"
	CounterJobsUnparked  = "jobs_unparked"
	CounterWALAppends    = "wal_appends"
	CounterWALSnapshots  = "wal_snapshots"
	CounterHITsFinished  = "hits_finished"
	CounterBudgetCharges = "budget_charges"
)

// Counter names published by the cross-query crowd scheduler.
const (
	CounterSchedCacheHits   = "sched_cache_hits"
	CounterSchedCacheMisses = "sched_cache_misses"
	CounterSchedDeduped     = "sched_questions_deduped"
	CounterSchedPublished   = "sched_questions_published"
	CounterSchedBatches     = "sched_batches"
	CounterSchedParked      = "sched_jobs_parked"
)
