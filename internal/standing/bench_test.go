package standing

import (
	"context"
	"fmt"
	"testing"
	"time"

	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/exec"
	"cdas/internal/jobs"
	"cdas/internal/scheduler"
	"cdas/internal/stats"
	"cdas/internal/textgen"
)

// BenchmarkStanding measures the continuous-query pipeline end to end:
// a full stream offered through a Processor against the real scheduler
// and simulated crowd. It reports stream throughput (items/s) and the
// window-close tail (window_p99_ms) — the BENCH_stream.json metrics
// the CI bench gate pins.
func BenchmarkStanding(b *testing.B) {
	const nItems = 240
	items := make([]exec.Item, nItems)
	for i := range items {
		// One item per second of event time: 60 per one-minute window.
		items[i] = testItem(i, base.Add(time.Duration(i)*time.Second))
	}
	job := continuousJob("bench/thor", jobs.StreamSpec{Items: nItems})

	var closeMS []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sched := newBenchScheduler(b)
		proc, err := NewProcessor(Config{
			Job:      job,
			Sched:    sched,
			Tick:     func(ctx context.Context) error { return sched.Flush(ctx) },
			Convert:  testConvert,
			OnWindow: func(WindowResult) error { return nil },
		})
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.StartTimer()
		prev := proc.Mark().Window
		for _, it := range items {
			t0 := time.Now()
			if err := proc.Offer(ctx, it); err != nil {
				b.Fatal(err)
			}
			if w := proc.Mark().Window; w > prev {
				// This offer crossed the watermark: its latency is the
				// cost of closing the window(s) it triggered.
				closeMS = append(closeMS, float64(time.Since(t0))/float64(time.Millisecond))
				prev = w
			}
		}
		t0 := time.Now()
		if err := proc.Drain(ctx); err != nil {
			b.Fatal(err)
		}
		if w := proc.Mark().Window; w > prev {
			closeMS = append(closeMS, float64(time.Since(t0))/float64(time.Millisecond))
		}
		b.StopTimer()
		sched.Close()
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(nItems*b.N)/b.Elapsed().Seconds(), "items/s")
	b.ReportMetric(stats.Quantile(closeMS, 0.99), "window_p99_ms")
}

// newBenchScheduler mirrors newTestScheduler without the testing.T
// plumbing (benchmarks manage Close themselves to keep teardown out of
// the timed region).
func newBenchScheduler(b *testing.B) *scheduler.Scheduler {
	b.Helper()
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(42))
	if err != nil {
		b.Fatal(err)
	}
	golden := make([]crowd.Question, 12)
	for i := range golden {
		golden[i] = crowd.Question{
			ID:     fmt.Sprintf("golden/g%03d", i),
			Text:   fmt.Sprintf("Calibration tweet #%d", i),
			Domain: append([]string(nil), textgen.Labels...),
			Truth:  textgen.LabelNeutral,
		}
	}
	s, err := scheduler.New(scheduler.Config{
		Platform: engine.CrowdPlatform{Platform: platform},
		Engine:   engine.Config{HITSize: 20, MaxInflightHITs: 4, Seed: 9},
		Golden:   golden,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}
