package crowd

import (
	"errors"
	"math"
	"testing"

	"cdas/internal/randx"
	"cdas/internal/stats"
)

func testPlatform(t *testing.T, cfg Config) *Platform {
	t.Helper()
	p, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func binaryQuestion(id string) Question {
	return Question{ID: id, Domain: []string{"yes", "no"}, Truth: "yes"}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.AccuracyLo, c.AccuracyHi = 0.9, 0.2 },
		func(c *Config) { c.ApprovalAlpha = 0 },
		func(c *Config) { c.MeanDelay = 0 },
		func(c *Config) { c.SpeedLo = 0 },
		func(c *Config) { c.SpeedHi = 0.1 },
		func(c *Config) { c.SpammerFraction = -0.1 },
		func(c *Config) { c.SpammerFraction, c.ColluderFraction = 0.7, 0.7 },
		func(c *Config) { c.Economics.WorkerFee = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(1)
		mutate(&cfg)
		if _, err := NewPlatform(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPopulationShape(t *testing.T) {
	p := testPlatform(t, DefaultConfig(42))
	if got := len(p.Workers()); got != 500 {
		t.Fatalf("population = %d, want 500", got)
	}
	accs := make([]float64, 0, 500)
	for _, w := range p.Workers() {
		if w.Accuracy < 0.28 || w.Accuracy > 0.98 {
			t.Fatalf("worker accuracy %v outside configured bounds", w.Accuracy)
		}
		if w.ApprovalRate < 0 || w.ApprovalRate > 1 {
			t.Fatalf("approval rate %v outside [0,1]", w.ApprovalRate)
		}
		accs = append(accs, w.Accuracy)
	}
	if mu := stats.Mean(accs); math.Abs(mu-0.72) > 0.03 {
		t.Errorf("population mean accuracy %v, want ~0.72", mu)
	}
	if got := p.MeanAccuracy(); math.Abs(got-stats.Mean(accs)) > 1e-12 {
		t.Errorf("MeanAccuracy mismatch")
	}
}

func TestApprovalRateSkewsHigherThanAccuracy(t *testing.T) {
	// The Figure 14 divergence: mean approval rate well above mean
	// accuracy.
	p := testPlatform(t, DefaultConfig(42))
	var acc, app float64
	for _, w := range p.Workers() {
		acc += w.Accuracy
		app += w.ApprovalRate
	}
	n := float64(len(p.Workers()))
	if app/n < acc/n+0.1 {
		t.Errorf("approval mean %v not clearly above accuracy mean %v", app/n, acc/n)
	}
}

func TestPublishDeliversAllInTimeOrder(t *testing.T) {
	p := testPlatform(t, DefaultConfig(7))
	run, err := p.Publish(HIT{Questions: []Question{binaryQuestion("q1")}}, 30)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	seen := make(map[string]bool)
	count := 0
	for {
		a, ok := run.Next()
		if !ok {
			break
		}
		count++
		if a.SubmitTime < prev {
			t.Fatalf("assignments out of order: %v after %v", a.SubmitTime, prev)
		}
		prev = a.SubmitTime
		if seen[a.Worker.ID] {
			t.Fatalf("worker %s delivered twice", a.Worker.ID)
		}
		seen[a.Worker.ID] = true
		if got := a.AnswerTo("q1"); got != "yes" && got != "no" {
			t.Fatalf("answer %q outside domain", got)
		}
	}
	if count != 30 {
		t.Errorf("delivered %d assignments, want 30", count)
	}
	if run.Outstanding() != 0 || run.Delivered() != 30 {
		t.Errorf("bookkeeping: outstanding=%d delivered=%d", run.Outstanding(), run.Delivered())
	}
}

func TestPublishValidation(t *testing.T) {
	p := testPlatform(t, DefaultConfig(7))
	if _, err := p.Publish(HIT{}, 3); !errors.Is(err, ErrNoQuestions) {
		t.Errorf("empty HIT err = %v", err)
	}
	if _, err := p.Publish(HIT{Questions: []Question{binaryQuestion("q")}}, 0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := p.Publish(HIT{Questions: []Question{binaryQuestion("q")}}, 501); !errors.Is(err, ErrNotEnoughWork) {
		t.Errorf("oversubscription err = %v", err)
	}
	badQ := Question{ID: "q", Domain: []string{"only"}, Truth: "only"}
	if _, err := p.Publish(HIT{Questions: []Question{badQ}}, 3); err == nil {
		t.Error("single-answer domain should fail validation")
	}
}

func TestQuestionValidate(t *testing.T) {
	good := Question{ID: "q", Domain: []string{"a", "b"}, Truth: "a"}
	if err := good.Validate(); err != nil {
		t.Errorf("valid question rejected: %v", err)
	}
	cases := []Question{
		{ID: "q", Domain: []string{"a", "b"}, Truth: "c"},
		{ID: "q", Domain: []string{"a"}, Truth: "a"},
		{ID: "q", Domain: []string{"a", "b"}, Truth: "a", Difficulty: 1.5},
		{ID: "q", Domain: []string{"a", "b"}, Truth: "a", TrapStrength: -0.5},
		{ID: "q", Domain: []string{"a", "b"}, Truth: "a", Trap: "z", TrapStrength: 0.5},
	}
	for i, q := range cases {
		if err := q.Validate(); err == nil {
			t.Errorf("invalid question %d accepted", i)
		}
	}
}

func TestEconomicsCharging(t *testing.T) {
	cfg := DefaultConfig(7)
	p := testPlatform(t, cfg)
	run, err := p.Publish(HIT{Questions: []Question{binaryQuestion("q")}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	fee := cfg.Economics.PerAssignment()
	for i := 0; i < 4; i++ {
		run.Next()
	}
	if got, want := run.Charged(), 4*fee; math.Abs(got-want) > 1e-12 {
		t.Errorf("charged %v, want %v", got, want)
	}
	run.Cancel()
	if _, ok := run.Next(); ok {
		t.Error("Next after Cancel should fail")
	}
	if got, want := run.Charged(), 4*fee; math.Abs(got-want) > 1e-12 {
		t.Errorf("cancel changed charges: %v, want %v", got, want)
	}
	if got, want := p.TotalSpent(), 4*fee; math.Abs(got-want) > 1e-12 {
		t.Errorf("platform spend %v, want %v", got, want)
	}
	if run.Outstanding() != 0 || !run.Cancelled() {
		t.Error("cancel bookkeeping wrong")
	}
}

func TestDeterministicRuns(t *testing.T) {
	collect := func() []string {
		p := testPlatform(t, DefaultConfig(11))
		run, err := p.Publish(HIT{ID: "fixed", Questions: []Question{binaryQuestion("q")}}, 20)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, a := range run.Drain() {
			out = append(out, a.Worker.ID+":"+a.AnswerTo("q"))
		}
		return out
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestHonestAccuracyIsRespected(t *testing.T) {
	// A single honest worker with accuracy 0.8 answering many questions
	// should land near 0.8 correct.
	w := &Worker{ID: "w", Accuracy: 0.8}
	rng := randx.New(3)
	q := Question{ID: "q", Domain: []string{"a", "b", "c"}, Truth: "a"}
	correct := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if w.Answer(rng, q) == "a" {
			correct++
		}
	}
	if got := float64(correct) / trials; math.Abs(got-0.8) > 0.01 {
		t.Errorf("empirical accuracy %v, want ~0.8", got)
	}
}

func TestDifficultyDegradesToChance(t *testing.T) {
	w := &Worker{ID: "w", Accuracy: 0.9}
	rng := randx.New(4)
	q := Question{ID: "q", Domain: []string{"a", "b", "c"}, Truth: "a", Difficulty: 1}
	correct := 0
	const trials = 30000
	for i := 0; i < trials; i++ {
		if w.Answer(rng, q) == "a" {
			correct++
		}
	}
	if got := float64(correct) / trials; math.Abs(got-1.0/3) > 0.01 {
		t.Errorf("difficulty-1 accuracy %v, want ~1/3", got)
	}
}

func TestTrapPullsWorkersToWrongAnswer(t *testing.T) {
	// The Last Airbender effect: surface sarcasm drags inaccurate workers
	// to the trap answer, while accurate workers mostly see through it
	// (Table 3's high-accuracy worker answers correctly).
	rng := randx.New(5)
	q := Question{ID: "q", Domain: []string{"pos", "neu", "neg"}, Truth: "pos",
		Trap: "neg", TrapStrength: 0.7}
	trapRate := func(acc float64) float64 {
		w := &Worker{ID: "w", Accuracy: acc}
		trap := 0
		const trials = 20000
		for i := 0; i < trials; i++ {
			if w.Answer(rng, q) == "neg" {
				trap++
			}
		}
		return float64(trap) / trials
	}
	weak := trapRate(0.35) // expected trap prob min(1, 2*0.7*0.65) = 0.91
	if weak < 0.8 {
		t.Errorf("weak-worker trap rate %v, want >= 0.8", weak)
	}
	strong := trapRate(0.92) // expected trap prob 2*0.7*0.08 = 0.112
	if strong > 0.25 {
		t.Errorf("strong-worker trap rate %v, want <= 0.25", strong)
	}
	if strong >= weak {
		t.Error("trap susceptibility must fall with accuracy")
	}
}

func TestBehaviors(t *testing.T) {
	rng := randx.New(6)
	q := Question{ID: "q", Domain: []string{"a", "b", "c"}, Truth: "a"}
	spam := &Worker{ID: "s", Behavior: Spammer}
	counts := map[string]int{}
	for i := 0; i < 30000; i++ {
		counts[spam.Answer(rng, q)]++
	}
	for _, d := range q.Domain {
		if f := float64(counts[d]) / 30000; math.Abs(f-1.0/3) > 0.02 {
			t.Errorf("spammer frequency of %q = %v, want ~1/3", d, f)
		}
	}
	adv := &Worker{ID: "a", Behavior: Adversarial, Accuracy: 0.99}
	for i := 0; i < 1000; i++ {
		if adv.Answer(rng, q) == "a" {
			t.Fatal("adversarial worker answered correctly")
		}
	}
	col := &Worker{ID: "c", Behavior: Colluder, ColludeAnswer: "b"}
	for i := 0; i < 100; i++ {
		if got := col.Answer(rng, q); got != "b" {
			t.Fatalf("colluder answered %q, want b", got)
		}
	}
	// Colluder whose answer is outside the domain falls back to random.
	colBad := &Worker{ID: "c2", Behavior: Colluder, ColludeAnswer: "zzz"}
	if got := colBad.Answer(rng, q); got != "a" && got != "b" && got != "c" {
		t.Errorf("out-of-domain colluder answered %q", got)
	}
}

func TestBehaviorFractions(t *testing.T) {
	cfg := DefaultConfig(9)
	cfg.SpammerFraction = 0.1
	cfg.AdversarialFraction = 0.05
	cfg.ColluderFraction = 0.05
	cfg.ColludeAnswer = "no"
	p := testPlatform(t, cfg)
	counts := map[Behavior]int{}
	for _, w := range p.Workers() {
		counts[w.Behavior]++
	}
	if counts[Spammer] != 50 || counts[Adversarial] != 25 || counts[Colluder] != 25 {
		t.Errorf("behaviour counts = %v", counts)
	}
	if counts[Honest] != 400 {
		t.Errorf("honest = %d, want 400", counts[Honest])
	}
}

func TestAutoHITIDs(t *testing.T) {
	p := testPlatform(t, DefaultConfig(1))
	r1, err := p.Publish(HIT{Questions: []Question{binaryQuestion("q")}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Publish(HIT{Questions: []Question{binaryQuestion("q")}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.HIT().ID == "" || r1.HIT().ID == r2.HIT().ID {
		t.Errorf("auto IDs not unique: %q vs %q", r1.HIT().ID, r2.HIT().ID)
	}
}

func TestAnswerToUnknownQuestion(t *testing.T) {
	a := Assignment{Answers: []Answer{{QuestionID: "q", Value: "x"}}}
	if got := a.AnswerTo("nope"); got != "" {
		t.Errorf("AnswerTo(unknown) = %q, want empty", got)
	}
}

func TestBehaviorString(t *testing.T) {
	for b, want := range map[Behavior]string{
		Honest: "honest", Spammer: "spammer", Adversarial: "adversarial",
		Colluder: "colluder", Behavior(9): "Behavior(9)",
	} {
		if got := b.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(b), got, want)
		}
	}
}

func TestDrain(t *testing.T) {
	p := testPlatform(t, DefaultConfig(13))
	run, err := p.Publish(HIT{Questions: []Question{binaryQuestion("q")}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	run.Next()
	rest := run.Drain()
	if len(rest) != 4 {
		t.Errorf("Drain returned %d, want 4", len(rest))
	}
	if more := run.Drain(); len(more) != 0 {
		t.Errorf("second Drain returned %d, want 0", len(more))
	}
}
