// Middleware chain for the API server: request IDs, panic recovery into
// a structured 500 envelope, optional access logging, and the tuned
// http.Server constructor (timeouts chosen to coexist with SSE).
package httpapi

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"time"

	"cdas/api"
)

// requestIDHeader carries the request's correlation ID, echoed back on
// the response. Incoming values are reused (truncated and sanitised) so
// callers can stitch traces across services.
const requestIDHeader = "X-Request-Id"

// middleware wraps the mux with the standard chain, outermost first:
// request ID, access log, panic recovery.
func (s *Server) middleware(next http.Handler) http.Handler {
	return withRequestID(s.accessLog(s.recoverPanics(next)))
}

func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get(requestIDHeader))
		if id == "" {
			id = newRequestID()
		}
		r.Header.Set(requestIDHeader, id)
		w.Header().Set(requestIDHeader, id)
		next.ServeHTTP(w, r)
	})
}

// sanitizeRequestID keeps caller-supplied IDs header-safe: printable
// ASCII, bounded length.
func sanitizeRequestID(id string) string {
	if len(id) > 64 {
		id = id[:64]
	}
	for _, c := range []byte(id) {
		if c <= 0x20 || c >= 0x7f {
			return ""
		}
	}
	return id
}

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// statusRecorder captures the response status for the access log and
// lets recovery know whether headers already left. Flush passes through
// so SSE keeps streaming under the middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.status = code
		sr.wrote = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if !sr.wrote {
		sr.status = http.StatusOK
		sr.wrote = true
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) accessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		logf := s.logfn()
		if logf == nil {
			next.ServeHTTP(w, r)
			return
		}
		sr := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sr, r)
		logf("httpapi: %s %s -> %d (%s) id=%s",
			r.Method, r.URL.Path, sr.status, time.Since(start).Round(time.Microsecond),
			r.Header.Get(requestIDHeader))
	})
}

// recoverPanics turns a handler panic into a structured 500 envelope
// when the response has not started, and re-panics http.ErrAbortHandler
// so deliberate aborts keep their net/http semantics.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			if logf := s.logfn(); logf != nil {
				logf("httpapi: panic serving %s %s: %v", r.Method, r.URL.Path, rec)
			}
			if !sr.wrote {
				writeError(sr, api.Internal("internal server error"))
			}
		}()
		next.ServeHTTP(sr, r)
	})
}

// NewHTTPServer wraps the handler in an http.Server with production
// timeouts. ReadTimeout and WriteTimeout stay zero on purpose: the SSE
// stream is a long-lived connection and either deadline would sever
// every watcher after it elapsed; ReadHeaderTimeout and IdleTimeout
// still bound slowloris-style abuse.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}
