package engine

import (
	"strings"
	"testing"

	"cdas/internal/core/online"
	"cdas/internal/crowd"
	"cdas/internal/privacy"
	"cdas/internal/profile"
)

// newTestPlatform wraps the crowd simulator for engine tests.
func newTestPlatform(t *testing.T, seed uint64) (CrowdPlatform, *crowd.Platform) {
	t.Helper()
	cfg := crowd.DefaultConfig(seed)
	cfg.Workers = 200
	p, err := crowd.NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return CrowdPlatform{p}, p
}

func sentimentDomain() []string { return []string{"pos", "neu", "neg"} }

func makeQuestions(prefix string, n int, truth string) []crowd.Question {
	qs := make([]crowd.Question, n)
	for i := range qs {
		qs[i] = crowd.Question{
			ID:     prefix + string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Text:   "tweet " + prefix,
			Domain: sentimentDomain(),
			Truth:  truth,
		}
	}
	return qs
}

func TestNewValidation(t *testing.T) {
	platform, _ := newTestPlatform(t, 1)
	if _, err := New(nil, nil, Config{}); err == nil {
		t.Error("nil platform accepted")
	}
	bad := []Config{
		{RequiredAccuracy: 1.5},
		{SamplingRate: -0.1},
		{HITSize: -1},
		{FallbackAccuracy: 0.4},
		{MaxWorkers: -1},
	}
	for i, cfg := range bad {
		if _, err := New(platform, nil, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(platform, nil, Config{}); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	platform, _ := newTestPlatform(t, 1)
	e, err := New(platform, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := e.Config()
	if cfg.JobName != "default" || cfg.RequiredAccuracy != 0.9 ||
		cfg.SamplingRate != 0.2 || cfg.HITSize != 100 ||
		cfg.FallbackAccuracy != 0.7 || cfg.MaxWorkers != 51 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

func TestPlanWorkersUsesFallbackThenProfiles(t *testing.T) {
	platform, _ := newTestPlatform(t, 2)
	store := profile.NewStore()
	e, err := New(platform, store, Config{JobName: "tsa", RequiredAccuracy: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.MeanAccuracy(); got != 0.7 {
		t.Errorf("cold mean = %v, want fallback 0.7", got)
	}
	// Warm up profiles with accurate workers: planned n should drop.
	nCold, err := e.PlanWorkers()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		w := "w" + string(rune('a'+i))
		for j := 0; j < 20; j++ {
			store.Record("tsa", w, j < 18) // 0.9 accuracy
		}
	}
	// Laplace smoothing gives (18+1)/(20+2) = 0.8636 per worker.
	if got := e.MeanAccuracy(); got < 0.85 {
		t.Errorf("warm mean = %v, want ~0.86", got)
	}
	nWarm, err := e.PlanWorkers()
	if err != nil {
		t.Fatal(err)
	}
	if nWarm >= nCold {
		t.Errorf("better workers should shrink the plan: cold=%d warm=%d", nCold, nWarm)
	}
}

func TestPlanWorkersCap(t *testing.T) {
	platform, _ := newTestPlatform(t, 3)
	e, err := New(platform, nil, Config{RequiredAccuracy: 0.999, FallbackAccuracy: 0.55, MaxWorkers: 9})
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.PlanWorkers()
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Errorf("capped plan = %d, want 9", n)
	}
}

func TestProcessBatchEndToEnd(t *testing.T) {
	platform, sim := newTestPlatform(t, 4)
	e, err := New(platform, nil, Config{
		JobName:          "tsa",
		RequiredAccuracy: 0.9,
		SamplingRate:     0.2,
		HITSize:          50,
	})
	if err != nil {
		t.Fatal(err)
	}
	real := makeQuestions("r", 20, "pos")
	golden := makeQuestions("g", 20, "neg")
	res, err := e.ProcessBatch(real, golden)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlannedWorkers < 1 || res.PlannedWorkers%2 != 1 {
		t.Errorf("planned workers = %d, want odd >= 1", res.PlannedWorkers)
	}
	if res.UsedWorkers != res.PlannedWorkers {
		t.Errorf("offline mode should use all workers: used=%d planned=%d", res.UsedWorkers, res.PlannedWorkers)
	}
	if len(res.Results) != 20 {
		t.Fatalf("results = %d, want 20", len(res.Results))
	}
	correct := 0
	for _, qr := range res.Results {
		if qr.Answer == "" {
			t.Errorf("question %s has no answer", qr.Question.ID)
		}
		if qr.Votes != res.UsedWorkers {
			t.Errorf("question %s votes=%d, want %d", qr.Question.ID, qr.Votes, res.UsedWorkers)
		}
		if qr.Answer == qr.Question.Truth {
			correct++
		}
	}
	// With C=0.9 the batch accuracy should be comfortably high.
	if acc := float64(correct) / 20; acc < 0.85 {
		t.Errorf("batch accuracy %v below expectation", acc)
	}
	if res.Cost <= 0 {
		t.Error("cost not accounted")
	}
	if sim.TotalSpent() != res.Cost {
		t.Errorf("platform spend %v != batch cost %v", sim.TotalSpent(), res.Cost)
	}
	// Sampling must have produced profiles for the participating workers.
	if got := len(e.Store().Workers("tsa")); got != res.UsedWorkers {
		t.Errorf("profiled workers = %d, want %d", got, res.UsedWorkers)
	}
}

func TestProcessBatchEarlyTermination(t *testing.T) {
	platform, _ := newTestPlatform(t, 5)
	run := func(strategy online.Strategy) BatchResult {
		e, err := New(platform, nil, Config{
			JobName:          "tsa",
			RequiredAccuracy: 0.9,
			SamplingRate:     0.4, // more golden -> sharper (smoothed) weights
			HITSize:          10,
			Strategy:         strategy,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.ProcessBatch(makeQuestions("r", 4, "pos"), makeQuestions("g", 10, "neg"))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(online.Never)
	early := run(online.ExpMax)
	if full.TerminatedEarly {
		t.Error("Never strategy must not terminate early")
	}
	if !early.TerminatedEarly {
		t.Error("ExpMax should terminate early on an easy batch")
	}
	if early.UsedWorkers >= full.UsedWorkers {
		t.Errorf("early termination should save workers: %d vs %d", early.UsedWorkers, full.UsedWorkers)
	}
	if early.Cost >= full.Cost {
		t.Errorf("early termination should save cost: %v vs %v", early.Cost, full.Cost)
	}
}

func TestProcessBatchValidation(t *testing.T) {
	platform, _ := newTestPlatform(t, 6)
	e, err := New(platform, nil, Config{HITSize: 10, SamplingRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ProcessBatch(nil, nil); err == nil {
		t.Error("empty batch accepted")
	}
	// 9 real questions exceed 10 - 2 = 8 real slots.
	if _, err := e.ProcessBatch(makeQuestions("r", 9, "pos"), makeQuestions("g", 5, "pos")); err == nil {
		t.Error("oversized batch accepted")
	}
	// Not enough golden questions.
	if _, err := e.ProcessBatch(makeQuestions("r", 4, "pos"), nil); err == nil {
		t.Error("missing golden pool accepted")
	}
	// Duplicate question IDs.
	dup := makeQuestions("r", 2, "pos")
	dup[1].ID = dup[0].ID
	if _, err := e.ProcessBatch(dup, makeQuestions("g", 5, "pos")); err == nil {
		t.Error("duplicate ids accepted")
	}
}

func TestProcessBatchNoSampling(t *testing.T) {
	platform, _ := newTestPlatform(t, 7)
	e, err := New(platform, nil, Config{HITSize: 10, SamplingRate: -1}) // negative -> validation error
	if err == nil {
		_ = e
		t.Fatal("negative sampling rate accepted")
	}
}

func TestProcessAllChunks(t *testing.T) {
	platform, _ := newTestPlatform(t, 8)
	e, err := New(platform, nil, Config{
		JobName:      "tsa",
		HITSize:      10,
		SamplingRate: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 20 questions with 8 real slots per HIT -> 3 batches.
	res, err := e.ProcessAll(makeQuestions("r", 20, "pos"), makeQuestions("g", 10, "neg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("batches = %d, want 3", len(res))
	}
	total := 0
	for _, br := range res {
		total += len(br.Results)
	}
	if total != 20 {
		t.Errorf("total results = %d, want 20", total)
	}
}

func TestBlockedWorkersAreExcluded(t *testing.T) {
	platform, sim := newTestPlatform(t, 9)
	pm := privacy.NewManager()
	for _, w := range sim.Workers() {
		pm.BlockWorker(w.ID) // block everyone: all answers discarded
	}
	e, err := New(platform, nil, Config{
		JobName:      "tsa",
		HITSize:      10,
		SamplingRate: 0.2,
		Privacy:      pm,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.ProcessBatch(makeQuestions("r", 4, "pos"), makeQuestions("g", 10, "neg"))
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedWorkers != 0 {
		t.Errorf("blocked workers still used: %d", res.UsedWorkers)
	}
	for _, qr := range res.Results {
		if qr.Votes != 0 {
			t.Errorf("question %s received votes from blocked workers", qr.Question.ID)
		}
	}
}

func TestPrivacySanitisesQuestionText(t *testing.T) {
	platform, _ := newTestPlatform(t, 10)
	e, err := New(platform, nil, Config{
		JobName:         "tsa",
		HITSize:         10,
		DisableSampling: true,
		Privacy:         privacy.NewManager(),
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := makeQuestions("r", 2, "pos")
	qs[0].Text = "@secretuser says this movie rocks"
	res, err := e.ProcessBatch(qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, qr := range res.Results {
		if strings.Contains(qr.Question.Text, "secretuser") {
			t.Errorf("question text leaked a handle: %q", qr.Question.Text)
		}
	}
}

func TestRenderHIT(t *testing.T) {
	hit := crowd.HIT{
		ID:    "HIT-1",
		Title: "Sentiment of movie tweets",
		Questions: []crowd.Question{
			{ID: "q1", Text: "Great movie <3", Domain: sentimentDomain(), Truth: "pos"},
			{ID: "q2", Text: "Meh & blah", Domain: sentimentDomain(), Truth: "neu"},
		},
	}
	html, err := RenderHIT(hit)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Sentiment of movie tweets",
		`id="q-q1"`, `id="q-q2"`,
		`name="q1" value="pos"`,
		"Great movie &lt;3", // HTML-escaped
		"Meh &amp; blah",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("rendered HIT missing %q", want)
		}
	}
	if strings.Contains(html, "<3") {
		t.Error("unescaped question text in HTML")
	}
}

func TestEngineAccuracyBeatsVotingOnHardQuestions(t *testing.T) {
	// Integration flavour of the paper's Table 4 claim: with golden-based
	// profiles, verification recovers answers on questions where workers
	// disagree. We give each real question moderate difficulty and check
	// the engine still meets a reasonable accuracy.
	platform, _ := newTestPlatform(t, 11)
	e, err := New(platform, nil, Config{
		JobName:          "tsa",
		RequiredAccuracy: 0.9,
		SamplingRate:     0.2,
		HITSize:          50,
	})
	if err != nil {
		t.Fatal(err)
	}
	real := makeQuestions("r", 20, "pos")
	for i := range real {
		real[i].Difficulty = 0.3
	}
	res, err := e.ProcessBatch(real, makeQuestions("g", 20, "neg"))
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, qr := range res.Results {
		if qr.Answer == qr.Question.Truth {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(res.Results)); acc < 0.7 {
		t.Errorf("accuracy on difficult batch = %v, want >= 0.7", acc)
	}
}
