// Durable job service: a Manager whose every lifecycle change is
// committed to a jobstore WAL before it is acknowledged, so a killed
// server replays the log on restart, requeues the jobs it was running
// and never re-runs a finished one.
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"cdas/internal/jobstore"
	"cdas/internal/metrics"
)

// Storage engine names for ServiceConfig.Engine.
const (
	// EngineWAL is the original append-only log: every event replayed
	// from seq zero (or the latest snapshot) at boot. Still selectable;
	// cdas-storectl migrate converts a WAL store to LSM in place.
	EngineWAL = "wal"
	// EngineLSM is the indexed store: an LSM tree holding each job's
	// current record under a primary key plus (state, priority, tenant)
	// secondary indexes, booted from the newest checkpoint + WAL tail.
	// It is the production default (cdas-server's -store-engine flag
	// defaults to it); checkpoints flush off the commit path.
	EngineLSM = "lsm"
)

// ErrServiceClosed is returned by every mutation after Close.
var ErrServiceClosed = errors.New("jobs: service is closed")

// ServiceConfig tunes OpenService. The zero value is a volatile
// (memory-only) service with default retry and compaction settings.
type ServiceConfig struct {
	// Dir roots the store's files. Empty disables persistence: the
	// service still runs the full lifecycle, in memory only.
	Dir string
	// Engine selects the storage engine: EngineWAL (the default when
	// empty, for compatibility) or EngineLSM. The engines use disjoint
	// file names and do not share state; OpenService refuses to boot an
	// engine against a directory holding the other engine's store —
	// migrate with cdas-storectl instead of switching in place.
	Engine string
	// MaxAttempts bounds the retry loop (default DefaultMaxAttempts).
	MaxAttempts int
	// SnapshotEvery compacts the store after this many committed events
	// (default 256; negative disables compaction). Under EngineWAL this
	// writes a snapshot; under EngineLSM it cuts a checkpoint.
	SnapshotEvery int
	// Counters, when set, receives lifecycle and WAL counters.
	Counters *metrics.Registry
	// StoreFail injects storage failpoints (EngineLSM only) — the
	// crash-equivalence tests' hook. Leave nil in production.
	StoreFail jobstore.FailFunc
	// Logf, when set, receives operational log lines (checkpoint
	// failures and the like). Nil discards them.
	Logf func(format string, args ...any)
}

// Service is the durable job lifecycle service. It is safe for
// concurrent use.
type Service struct {
	cfg ServiceConfig
	m   *Manager

	// mu serialises state mutation with WAL appends so the log's event
	// order always matches the order the state machine applied them in.
	mu      sync.Mutex
	log     *jobstore.Log // EngineWAL backend (nil otherwise)
	lsm     *jobstore.LSM // EngineLSM backend (nil otherwise)
	events  int           // committed events since the last LSM checkpoint
	closed  bool
	wake    chan struct{}
	resumed []string
	budget  BudgetState
	streams map[string]StreamMark
}

// LSM keyspace. The primary record lives under "j/<name>"; secondary
// index entries are empty values whose keys order the scan:
//
//	j/<name>                      → walStatus JSON (current record)
//	b                             → BudgetState JSON (ledger)
//	xs/<state>/<seq>/<name>       state index, FIFO order within a state
//	xp/<priority>/<name>          priority index (admission order)
//	xt/<tenant>/<name>            tenant index
//
// seq and priority are fixed-width big-endian hex so byte order equals
// numeric order; priority is offset-encoded to order negatives first.
const (
	lsmPrimaryPrefix = "j/"
	lsmBudgetKey     = "b"
	lsmStatePrefix   = "xs/"
	lsmPrioPrefix    = "xp/"
	lsmTenantPrefix  = "xt/"
	// lsmStreamPrefix holds continuous jobs' stream marks: sm/<name> →
	// streamRecord JSON (the window high-water mark plus cumulative
	// stream accounting, committed at each window close).
	lsmStreamPrefix = "sm/"
)

func lsmPrimaryKey(name string) string { return lsmPrimaryPrefix + name }

func lsmStreamKey(name string) string { return lsmStreamPrefix + name }

func lsmStateKey(state State, seq uint64, name string) string {
	return fmt.Sprintf("%s%s/%016x/%s", lsmStatePrefix, state, seq, name)
}

func lsmPrioKey(priority int, name string) string {
	return fmt.Sprintf("%s%016x/%s", lsmPrioPrefix, uint64(int64(priority))+(1<<63), name)
}

func lsmTenantKey(tenant, name string) string {
	return lsmTenantPrefix + tenant + "/" + name
}

// prefixEnd is the smallest key greater than every key with the given
// prefix — the exclusive upper bound for a prefix range-read.
func prefixEnd(prefix string) string {
	return prefix[:len(prefix)-1] + string(prefix[len(prefix)-1]+1)
}

// BudgetState is the durable crowd-budget ledger the scheduler's
// accounting is persisted through: global spend plus per-job spend,
// WAL-committed so a restarted server keeps charging from where the
// dead one stopped rather than re-granting spent money.
type BudgetState struct {
	// GlobalSpent is the total crowd spend across every job.
	GlobalSpent float64 `json:"global_spent"`
	// Jobs maps job name to its spend so far.
	Jobs map[string]float64 `json:"jobs,omitempty"`
}

// clone deep-copies the state so callers never alias the live map.
func (b BudgetState) clone() BudgetState {
	out := BudgetState{GlobalSpent: b.GlobalSpent}
	if len(b.Jobs) > 0 {
		out.Jobs = make(map[string]float64, len(b.Jobs))
		for k, v := range b.Jobs {
			out.Jobs[k] = v
		}
	}
	return out
}

// StreamMark is a continuous job's durable stream position: the highest
// event-time window already closed plus the cumulative accounting up to
// and including it. It is committed like any other transition (same
// WAL/LSM path, fsync on commit), so a kill -9 resumes the stream at
// the next window without re-charging the closed ones.
type StreamMark struct {
	// Window is the highest closed window index; -1 before any close.
	Window int `json:"window"`
	// Spent is the crowd spend across closed windows.
	Spent float64 `json:"spent"`
	// Seen / Matched / Dropped / Degraded are cumulative item counts
	// over the closed windows (degrade-ladder accounting included).
	Seen     int64 `json:"seen"`
	Matched  int64 `json:"matched"`
	Dropped  int64 `json:"dropped"`
	Degraded int64 `json:"degraded"`
	// Enum is an enumeration job's durable result set; nil for
	// continuous jobs, so their mark records are wire-unchanged.
	Enum *EnumProgress `json:"enum,omitempty"`
}

// EnumProgress is an enumeration job's durable result-set snapshot,
// committed inside its StreamMark: everything needed to rebuild the
// dedup set, the frequency-of-frequencies and the stop state after a
// kill -9, without replaying any crowd work. For an enumeration job
// the surrounding mark is reinterpreted: Window is the last completed
// HIT batch index, Seen the cumulative contributions, Matched the
// distinct items discovered.
type EnumProgress struct {
	// Counts maps canonical item key -> times contributed.
	Counts map[string]int `json:"counts,omitempty"`
	// Display maps canonical item key -> normalised display text.
	Display map[string]string `json:"display,omitempty"`
	// FirstBatch maps canonical item key -> batch that discovered it.
	FirstBatch map[string]int `json:"first_batch,omitempty"`
	// Contributions is the total contribution count (with repeats).
	Contributions int64 `json:"contributions,omitempty"`
	// Stopped records why the job stopped buying batches, empty while
	// it is still collecting ("marginal_value", "target_coverage",
	// "max_batches" or "source_exhausted").
	Stopped string `json:"stopped,omitempty"`
}

// clone deep-copies the mark so callers never alias the stored maps.
func (m StreamMark) clone() StreamMark {
	if m.Enum == nil {
		return m
	}
	e := &EnumProgress{Contributions: m.Enum.Contributions, Stopped: m.Enum.Stopped}
	if len(m.Enum.Counts) > 0 {
		e.Counts = make(map[string]int, len(m.Enum.Counts))
		for k, v := range m.Enum.Counts {
			e.Counts[k] = v
		}
	}
	if len(m.Enum.Display) > 0 {
		e.Display = make(map[string]string, len(m.Enum.Display))
		for k, v := range m.Enum.Display {
			e.Display[k] = v
		}
	}
	if len(m.Enum.FirstBatch) > 0 {
		e.FirstBatch = make(map[string]int, len(m.Enum.FirstBatch))
		for k, v := range m.Enum.FirstBatch {
			e.FirstBatch[k] = v
		}
	}
	m.Enum = e
	return m
}

// streamRecord pairs a job name with its mark for WAL/snapshot framing.
type streamRecord struct {
	Job  string     `json:"job"`
	Mark StreamMark `json:"mark"`
}

// walStatus is a job lifecycle record as written to the WAL and
// snapshot. It mirrors Status plus the FIFO sequence.
type walStatus struct {
	Job      Job     `json:"job"`
	State    State   `json:"state"`
	Attempts int     `json:"attempts"`
	Progress float64 `json:"progress"`
	Cost     float64 `json:"cost"`
	Error    string  `json:"error,omitempty"`
	Seq      uint64  `json:"seq"`
}

// walEvent is one WAL record. Lifecycle events ("submit", "update")
// carry the full post-transition record of the job they concern, which
// makes replay a plain overwrite — trivially idempotent under the
// storage layer's at-least-once crash windows. Budget events ("budget")
// carry the full ledger for the same reason: replay keeps the last one.
type walEvent struct {
	Op     string        `json:"op"` // "submit", "update", "budget" or "stream"
	Status walStatus     `json:"status,omitempty"`
	Budget *BudgetState  `json:"budget,omitempty"`
	Stream *streamRecord `json:"stream,omitempty"`
}

// walSnapshot is the snapshot payload: every job's current record plus
// the budget ledger and the continuous jobs' stream marks.
type walSnapshot struct {
	Jobs    []walStatus    `json:"jobs"`
	Budget  *BudgetState   `json:"budget,omitempty"`
	Streams []streamRecord `json:"streams,omitempty"`
}

func toWal(st Status) walStatus {
	return walStatus{
		Job:      st.Job,
		State:    st.State,
		Attempts: st.Attempts,
		Progress: st.Progress,
		Cost:     st.Cost,
		Error:    st.Error,
		Seq:      st.seq,
	}
}

func fromWal(ws walStatus) Status {
	return Status{
		Job:      ws.Job,
		State:    ws.State,
		Attempts: ws.Attempts,
		Progress: ws.Progress,
		Cost:     ws.Cost,
		Error:    ws.Error,
		seq:      ws.Seq,
	}
}

// OpenService opens (or creates) the durable service: it replays the
// snapshot and WAL under cfg.Dir, then requeues every job the previous
// process left Running — those are exactly the jobs a crash or
// shutdown interrupted mid-flight.
func OpenService(cfg ServiceConfig) (*Service, error) {
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 256
	}
	s := &Service{
		cfg:  cfg,
		m:    NewManager(),
		wake: make(chan struct{}, 1),
	}
	s.m.SetMaxAttempts(cfg.MaxAttempts)
	if cfg.Dir == "" {
		return s, nil
	}
	// Refuse to boot an engine over the other engine's store: the file
	// sets are disjoint, so the wrong engine would come up empty and
	// look exactly like data loss.
	hasWAL, hasLSM := jobstore.DetectEngines(cfg.Dir)
	switch cfg.Engine {
	case "", EngineWAL:
		if hasLSM {
			return nil, fmt.Errorf("jobs: %s holds an LSM-engine store but engine %q was selected; pass -store-engine=lsm (if both engines' files are present, an interrupted migration left them — re-run cdas-storectl migrate)", cfg.Dir, EngineWAL)
		}
	case EngineLSM:
		if hasWAL && hasLSM {
			return nil, fmt.Errorf("jobs: %s holds both WAL- and LSM-engine files — an interrupted migration; re-run cdas-storectl migrate -dir %s", cfg.Dir, cfg.Dir)
		}
		if hasWAL {
			return nil, fmt.Errorf("jobs: %s holds a WAL-engine store but engine %q was selected; run cdas-storectl migrate -dir %s first, or pass -store-engine=wal", cfg.Dir, EngineLSM, cfg.Dir)
		}
		return openLSMService(s)
	default:
		return nil, fmt.Errorf("jobs: unknown storage engine %q", cfg.Engine)
	}
	log, err := jobstore.Open(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s.log = log
	if snap, _ := log.Snapshot(); snap != nil {
		var ws walSnapshot
		if err := json.Unmarshal(snap, &ws); err != nil {
			log.Close()
			return nil, fmt.Errorf("jobs: decoding snapshot: %w", err)
		}
		for _, st := range ws.Jobs {
			s.m.restore(fromWal(st))
		}
		if ws.Budget != nil {
			s.budget = ws.Budget.clone()
		}
		for _, sr := range ws.Streams {
			s.setStreamMark(sr.Job, sr.Mark)
		}
	}
	for i, rec := range log.Entries() {
		var ev walEvent
		if err := json.Unmarshal(rec, &ev); err != nil {
			log.Close()
			return nil, fmt.Errorf("jobs: decoding WAL record %d: %w", i, err)
		}
		switch ev.Op {
		case "budget":
			if ev.Budget != nil {
				s.budget = ev.Budget.clone()
			}
			continue
		case "stream":
			// Marks replay last-one-wins, exactly like the ledger.
			if ev.Stream != nil {
				s.setStreamMark(ev.Stream.Job, ev.Stream.Mark)
			}
			continue
		}
		s.m.restore(fromWal(ev.Status))
	}
	// Resume: jobs the dead process had claimed go back to Pending so a
	// dispatcher can pick them up again.
	for _, st := range s.m.Statuses() {
		if st.State != StateRunning {
			continue
		}
		re, err := s.m.Requeue(st.Job.Name)
		if err != nil {
			log.Close()
			return nil, err
		}
		if err := s.append("update", StateRunning, re, true); err != nil {
			log.Close()
			return nil, err
		}
		s.resumed = append(s.resumed, st.Job.Name)
		cfg.Counters.Inc(metrics.CounterJobsResumed)
	}
	return s, nil
}

// openLSMService finishes OpenService for EngineLSM: boot from the
// newest checkpoint plus the WAL tail, restore every job's current
// record from the primary keyspace, then requeue the jobs the dead
// process was running — found by a range-read of the state index, and
// cross-checked against the primary records (the two are committed in
// one atomic batch, so any disagreement is an engine bug worth failing
// the boot over).
func openLSMService(s *Service) (*Service, error) {
	lsm, err := jobstore.OpenLSM(jobstore.LSMConfig{
		Dir:  s.cfg.Dir,
		Fail: s.cfg.StoreFail,
		// Checkpoints cut off the commit path: lsmCommit only freezes
		// the memtable and rotates the WAL segment; the flush runs in
		// the background and reports through onCheckpoint.
		OnlineCheckpoint: true,
		OnCheckpoint:     s.onCheckpoint,
	})
	if err != nil {
		return nil, err
	}
	s.lsm = lsm
	fail := func(err error) (*Service, error) {
		lsm.Close()
		return nil, err
	}
	if raw, ok, err := lsm.Get(lsmBudgetKey); err != nil {
		return fail(err)
	} else if ok {
		if err := json.Unmarshal(raw, &s.budget); err != nil {
			return fail(fmt.Errorf("jobs: decoding budget record: %w", err))
		}
	}
	var decodeErr error
	err = lsm.Scan(lsmStreamPrefix, prefixEnd(lsmStreamPrefix), func(key string, val []byte) bool {
		var sr streamRecord
		if decodeErr = json.Unmarshal(val, &sr); decodeErr != nil {
			decodeErr = fmt.Errorf("jobs: decoding stream mark %q: %w", key, decodeErr)
			return false
		}
		s.setStreamMark(sr.Job, sr.Mark)
		return true
	})
	if err == nil {
		err = decodeErr
	}
	if err != nil {
		return fail(err)
	}
	err = lsm.Scan(lsmPrimaryPrefix, prefixEnd(lsmPrimaryPrefix), func(key string, val []byte) bool {
		var ws walStatus
		if decodeErr = json.Unmarshal(val, &ws); decodeErr != nil {
			decodeErr = fmt.Errorf("jobs: decoding job record %q: %w", key, decodeErr)
			return false
		}
		s.m.restore(fromWal(ws))
		return true
	})
	if err == nil {
		err = decodeErr
	}
	if err != nil {
		return fail(err)
	}
	// Resume via the state index: every xs/running entry names a job a
	// crash or shutdown interrupted mid-flight.
	runningPrefix := lsmStatePrefix + string(StateRunning) + "/"
	var running []string
	// The name starts after the fixed-width 16-hex seq and its slash;
	// splitting on the last '/' instead would truncate names that
	// themselves contain one.
	nameAt := len(runningPrefix) + 17
	err = lsm.Scan(runningPrefix, prefixEnd(runningPrefix), func(key string, _ []byte) bool {
		if len(key) > nameAt {
			running = append(running, key[nameAt:])
		}
		return true
	})
	if err != nil {
		return fail(err)
	}
	for _, name := range running {
		if st, ok := s.m.Status(name); !ok || st.State != StateRunning {
			return fail(fmt.Errorf("jobs: state index lists %q as running but the primary record disagrees", name))
		}
		re, err := s.m.Requeue(name)
		if err != nil {
			return fail(err)
		}
		if err := s.append("update", StateRunning, re, true); err != nil {
			return fail(err)
		}
		s.resumed = append(s.resumed, name)
		s.cfg.Counters.Inc(metrics.CounterJobsResumed)
	}
	return s, nil
}

// Resumed lists the jobs OpenService moved from Running back to
// Pending — the unfinished work recovered from the log.
func (s *Service) Resumed() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.resumed...)
}

// Wake returns a channel that receives a token whenever new Pending
// work may exist; dispatcher workers select on it instead of busy
// polling.
func (s *Service) Wake() <-chan struct{} { return s.wake }

func (s *Service) notify() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// append commits one lifecycle event. prevState is the job's state
// before the transition ("" for a brand-new submission) — the LSM
// engine uses it to re-file the state index entry in the same atomic
// batch. Callers hold s.mu. sync selects fsync-on-commit; progress
// events pass false — they are advisory (reset on requeue), and a
// later synced transition flushes them anyway.
func (s *Service) append(op string, prevState State, st Status, sync bool) error {
	return s.appendEvent(walEvent{Op: op, Status: toWal(st)}, prevState, sync)
}

// appendEvent commits any event (no-op when the service is volatile)
// and compacts when the policy says so — the single choke point for
// lifecycle and budget records alike, so every event kind counts
// toward and triggers compaction. Callers hold s.mu.
func (s *Service) appendEvent(ev walEvent, prevState State, sync bool) error {
	if s.closed {
		return ErrServiceClosed
	}
	if s.lsm != nil {
		return s.lsmCommit(ev, prevState)
	}
	if s.log == nil {
		return nil
	}
	rec, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("jobs: encoding event: %w", err)
	}
	if sync {
		_, err = s.log.Append(rec)
	} else {
		_, err = s.log.AppendNoSync(rec)
	}
	if err != nil {
		return err
	}
	s.cfg.Counters.Inc(metrics.CounterWALAppends)
	if s.cfg.SnapshotEvery > 0 && s.log.AppendsSinceSnapshot() >= s.cfg.SnapshotEvery {
		// The event above is already durably committed; compaction is
		// best-effort housekeeping and must not fail the transition (a
		// failed compaction simply retries on a later append).
		_ = s.compact()
	}
	return nil
}

// lsmCommit turns one event into an atomic LSM batch: the primary
// record plus every secondary index entry the event adds, moves or
// removes — all under one WAL frame, so a crash can never persist the
// record without its index entries or vice versa. Callers hold s.mu.
func (s *Service) lsmCommit(ev walEvent, prevState State) error {
	var batch []jobstore.Op
	if ev.Op == "budget" {
		payload, err := json.Marshal(ev.Budget)
		if err != nil {
			return fmt.Errorf("jobs: encoding budget: %w", err)
		}
		batch = append(batch, jobstore.Op{Key: lsmBudgetKey, Value: payload})
	} else if ev.Op == "stream" {
		payload, err := json.Marshal(ev.Stream)
		if err != nil {
			return fmt.Errorf("jobs: encoding stream mark: %w", err)
		}
		batch = append(batch, jobstore.Op{Key: lsmStreamKey(ev.Stream.Job), Value: payload})
	} else {
		ws := ev.Status
		payload, err := json.Marshal(ws)
		if err != nil {
			return fmt.Errorf("jobs: encoding job record: %w", err)
		}
		batch = append(batch, jobstore.Op{Key: lsmPrimaryKey(ws.Job.Name), Value: payload})
		if prevState != "" && prevState != ws.State {
			batch = append(batch, jobstore.Op{Key: lsmStateKey(prevState, ws.Seq, ws.Job.Name), Delete: true})
		}
		if prevState != ws.State {
			batch = append(batch, jobstore.Op{Key: lsmStateKey(ws.State, ws.Seq, ws.Job.Name)})
		}
		if ev.Op == "submit" {
			// Priority and tenant are immutable, so their index entries
			// are written once, at submission.
			batch = append(batch, jobstore.Op{Key: lsmPrioKey(ws.Job.Priority, ws.Job.Name)})
			if ws.Job.Tenant != "" {
				batch = append(batch, jobstore.Op{Key: lsmTenantKey(ws.Job.Tenant, ws.Job.Name)})
			}
		}
	}
	if err := s.lsm.Apply(batch); err != nil {
		return err
	}
	s.cfg.Counters.Inc(metrics.CounterWALAppends)
	s.events++
	if s.cfg.SnapshotEvery > 0 && s.events >= s.cfg.SnapshotEvery {
		// Best-effort housekeeping, same contract as the WAL engine's
		// compaction: the batch above is already durable. The cut is
		// asynchronous — only the freeze and WAL-segment rotation happen
		// here; the flush's outcome arrives through onCheckpoint. The
		// event counter resets only when a checkpoint actually covers
		// the events, so a failure here retries on the very next commit
		// instead of waiting out another SnapshotEvery window.
		if _, err := s.lsm.CheckpointAsync(); err != nil {
			s.noteCheckpointFailureLocked(err)
		} else {
			s.events = 0
		}
	}
	return nil
}

// onCheckpoint receives every checkpoint flush's outcome from the LSM
// engine (called on the flush goroutine, no store locks held).
func (s *Service) onCheckpoint(err error) {
	if err == nil {
		s.cfg.Counters.Inc(metrics.CounterWALSnapshots)
		return
	}
	s.mu.Lock()
	s.noteCheckpointFailureLocked(err)
	s.mu.Unlock()
}

// noteCheckpointFailureLocked surfaces a failed checkpoint: counted,
// logged, and the event counter re-armed so the next commit retries
// immediately. Callers hold s.mu.
func (s *Service) noteCheckpointFailureLocked(err error) {
	s.events = s.cfg.SnapshotEvery
	s.cfg.Counters.Inc(metrics.CounterCheckpointFailures)
	s.logf("jobs: store checkpoint failed (will retry on next commit): %v", err)
}

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// compact writes a full-state snapshot, truncating the WAL. Callers
// hold s.mu.
func (s *Service) compact() error {
	var snap walSnapshot
	for _, st := range s.m.Statuses() {
		snap.Jobs = append(snap.Jobs, toWal(st))
	}
	if s.budget.GlobalSpent > 0 || len(s.budget.Jobs) > 0 {
		b := s.budget.clone()
		snap.Budget = &b
	}
	if len(s.streams) > 0 {
		names := make([]string, 0, len(s.streams))
		for name := range s.streams {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			snap.Streams = append(snap.Streams, streamRecord{Job: name, Mark: s.streams[name]})
		}
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("jobs: encoding snapshot: %w", err)
	}
	if err := s.log.WriteSnapshot(payload); err != nil {
		return err
	}
	s.cfg.Counters.Inc(metrics.CounterWALSnapshots)
	return nil
}

// Submit registers the job (state Pending), commits it, and wakes the
// dispatcher pool. On a WAL failure the registration is rolled back so
// memory never acknowledges more than disk.
func (s *Service) Submit(job Job) (Plan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	plan, err := s.m.Register(job)
	if err != nil {
		return Plan{}, err
	}
	st, _ := s.m.Status(job.Name)
	if err := s.append("submit", "", st, true); err != nil {
		s.m.Unregister(job.Name)
		return Plan{}, err
	}
	s.cfg.Counters.Inc(metrics.CounterJobsSubmitted)
	s.notify()
	return plan, nil
}

// Claim moves the oldest Pending job to Running and commits the
// transition. ok is false when nothing is pending.
func (s *Service) Claim() (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.m.Claim()
	if !ok {
		return Status{}, false
	}
	if err := s.append("update", StatePending, st, true); err != nil {
		// Disk refused the claim: revert it entirely (state and attempt
		// count) so no work runs unlogged and transient storage errors
		// don't eat the retry budget.
		s.m.unclaim(st.Job.Name)
		return Status{}, false
	}
	s.cfg.Counters.Inc(metrics.CounterJobsStarted)
	return st, true
}

// commitUpdate appends a post-transition record. If the log refuses
// the commit, the in-memory record is reverted to prev, preserving the
// invariant that memory never acknowledges more than disk.
func (s *Service) commitUpdate(prev, st Status, sync bool) error {
	if err := s.append("update", prev.State, st, sync); err != nil {
		s.m.revert(prev)
		return err
	}
	return nil
}

// Complete commits a Running job's successful finish with the final
// cost of the finishing attempt.
func (s *Service) Complete(name string, cost float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, _ := s.m.Status(name)
	st, err := s.m.Complete(name, cost)
	if err != nil {
		return err
	}
	if err := s.commitUpdate(prev, st, true); err != nil {
		return err
	}
	s.cfg.Counters.Inc(metrics.CounterJobsCompleted)
	return nil
}

// Fail commits a Running job's failure: requeued (retry) while
// attempts remain and the cause is not permanent, terminal Failed
// otherwise.
func (s *Service) Fail(name string, cause error, cost float64) (requeued bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, _ := s.m.Status(name)
	st, requeued, err := s.m.Fail(name, cause, cost)
	if err != nil {
		return false, err
	}
	if err := s.commitUpdate(prev, st, true); err != nil {
		return false, err
	}
	if requeued {
		s.cfg.Counters.Inc(metrics.CounterJobsRetried)
		s.notify()
	} else {
		s.cfg.Counters.Inc(metrics.CounterJobsFailed)
	}
	return requeued, nil
}

// Cancel commits a Pending or Running job's cancellation. Cancelling a
// Running job here only records the state — interrupting the actual
// run is the dispatcher's half (per-job context cancellation).
func (s *Service) Cancel(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, _ := s.m.Status(name)
	st, err := s.m.Cancel(name)
	if err != nil {
		return err
	}
	if err := s.commitUpdate(prev, st, true); err != nil {
		return err
	}
	s.cfg.Counters.Inc(metrics.CounterJobsCancelled)
	return nil
}

// Park commits a Running job's move to Parked: budget admission refused
// the run. The job leaves the claim queue but stays resumable.
func (s *Service) Park(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, _ := s.m.Status(name)
	st, err := s.m.Park(name)
	if err != nil {
		return err
	}
	if err := s.commitUpdate(prev, st, true); err != nil {
		return err
	}
	s.cfg.Counters.Inc(metrics.CounterJobsParked)
	return nil
}

// Unpark commits a Parked job's return to Pending and wakes the pool —
// the resume path once budget frees up or the operator raises it.
func (s *Service) Unpark(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, _ := s.m.Status(name)
	st, err := s.m.Unpark(name)
	if err != nil {
		return err
	}
	if err := s.commitUpdate(prev, st, true); err != nil {
		return err
	}
	s.cfg.Counters.Inc(metrics.CounterJobsUnparked)
	s.notify()
	return nil
}

// ChargeBudget commits a crowd-spend charge against the job and the
// global ledger — the scheduler's persistence hook, so budget state
// survives WAL replay. Charges are facts about money already spent;
// they are recorded even for jobs the service has never seen.
func (s *Service) ChargeBudget(name string, amount float64) error {
	if amount <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.budget.clone()
	s.budget.GlobalSpent += amount
	if s.budget.Jobs == nil {
		s.budget.Jobs = make(map[string]float64)
	}
	s.budget.Jobs[name] += amount
	b := s.budget.clone()
	if err := s.appendEvent(walEvent{Op: "budget", Budget: &b}, "", true); err != nil {
		s.budget = prev
		return err
	}
	s.cfg.Counters.Inc(metrics.CounterBudgetCharges)
	return nil
}

// Budget returns a copy of the durable budget ledger.
func (s *Service) Budget() BudgetState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budget.clone()
}

// setStreamMark records a mark in memory. Callers hold s.mu (or are in
// single-threaded boot).
func (s *Service) setStreamMark(name string, mark StreamMark) {
	if s.streams == nil {
		s.streams = make(map[string]StreamMark)
	}
	s.streams[name] = mark
}

// CommitStreamMark durably advances a continuous job's stream position:
// the mark is fsynced through the same WAL/LSM path as lifecycle
// transitions before it is acknowledged, so a crash after a window
// close replays the close — the restarted runner skips every window at
// or below mark.Window and never re-charges it. Marks must advance;
// committing a mark whose window regresses below the recorded one is
// rejected (a runner bug, not a storage race).
func (s *Service) CommitStreamMark(name string, mark StreamMark) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, had := s.streams[name]
	if had && mark.Window < prev.Window {
		return fmt.Errorf("jobs: stream mark for %q regresses window %d below committed %d", name, mark.Window, prev.Window)
	}
	mark = mark.clone()
	s.setStreamMark(name, mark)
	if err := s.appendEvent(walEvent{Op: "stream", Stream: &streamRecord{Job: name, Mark: mark}}, "", true); err != nil {
		if had {
			s.streams[name] = prev
		} else {
			delete(s.streams, name)
		}
		return err
	}
	return nil
}

// StreamMarkFor returns a continuous job's committed stream position.
// ok is false when no window has ever been committed for the job.
func (s *Service) StreamMarkFor(name string) (StreamMark, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mark, ok := s.streams[name]
	return mark.clone(), ok
}

// VoidClaim commits the reversal of a claim whose runner never started
// (shutdown won the claim race): the job returns to Pending with the
// claim's attempt increment refunded.
func (s *Service) VoidClaim(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, _ := s.m.Status(name)
	st, err := s.m.voidClaim(name)
	if err != nil {
		return err
	}
	if err := s.commitUpdate(prev, st, true); err != nil {
		return err
	}
	s.notify()
	return nil
}

// Requeue commits a Running job's return to Pending (graceful shutdown
// of its worker) and wakes the pool.
func (s *Service) Requeue(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, _ := s.m.Status(name)
	st, err := s.m.Requeue(name)
	if err != nil {
		return err
	}
	if err := s.commitUpdate(prev, st, true); err != nil {
		return err
	}
	s.notify()
	return nil
}

// Progress commits a Running job's progress fraction and the cost
// charged so far in the current attempt.
func (s *Service) Progress(name string, progress, cost float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, _ := s.m.Status(name)
	st, err := s.m.SetProgress(name, progress, cost)
	if err != nil {
		return err
	}
	return s.commitUpdate(prev, st, false)
}

// Status returns a job's lifecycle record. It takes the commit lock,
// so a transition is never observable before its WAL commit succeeded
// (or was rolled back) — reads see only acknowledged state.
func (s *Service) Status(name string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Status(name)
}

// Statuses lists every job's lifecycle record, sorted by name, under
// the same acknowledged-state guarantee as Status.
func (s *Service) Statuses() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Statuses()
}

// StatusesPage lists up to limit lifecycle records in name order,
// strictly after the given name, optionally filtered by state and/or
// tenant — an index range-read, not a sort of the whole table. It
// takes the commit lock, so pages see only acknowledged state.
func (s *Service) StatusesPage(after string, limit int, state State, tenant string) ([]Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.StatusesPage(after, limit, state, tenant)
}

// MaxAttempts reports the retry bound.
func (s *Service) MaxAttempts() int { return s.m.MaxAttempts() }

// Quiesce blocks until no store checkpoint is in flight — a graceful
// shutdown (and the crash harness) uses it to reach a settled store.
func (s *Service) Quiesce() {
	s.mu.Lock()
	lsm := s.lsm
	s.mu.Unlock()
	if lsm != nil {
		lsm.Quiesce()
	}
}

// Close releases every configured store. The in-memory view stays
// readable; mutations after Close fail with ErrServiceClosed. Close is
// idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	log, lsm := s.log, s.lsm
	// Drop the lock before closing: the LSM drains in-flight checkpoint
	// flushes, whose completion callback (onCheckpoint) takes s.mu.
	s.mu.Unlock()
	var first error
	if lsm != nil {
		first = lsm.Close()
	}
	if log != nil {
		if err := log.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Durable reports whether the service is backed by an open store.
func (s *Service) Durable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed && (s.log != nil || s.lsm != nil)
}
