// Package httpapi serves CDAS results over HTTP in the style of the
// paper's Figure 4: a query's running percentages, reason keywords and
// HIT progress, refreshed as the crowdsourcing engine accepts answers.
package httpapi

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"sync"

	"cdas/internal/engine"
	"cdas/internal/exec"
	"cdas/internal/metrics"
)

// QueryState is the live presentation of one registered query.
type QueryState struct {
	Name        string              `json:"name"`
	Domain      []string            `json:"domain"`
	Percentages map[string]float64  `json:"percentages"`
	Reasons     map[string][]string `json:"reasons"`
	Items       int                 `json:"items"`
	// Progress of the crowdsourcing job in [0, 1].
	Progress float64 `json:"progress"`
	// Done marks a finished job — successfully completed, failed or
	// cancelled; Error distinguishes the unhappy endings.
	Done bool `json:"done"`
	// Error carries the failure when a followed stream ended with one;
	// empty for healthy queries.
	Error string `json:"error,omitempty"`
}

// Server holds query states and exposes them over HTTP. It is safe for
// concurrent use. Attach a job service with SetJobs to enable the write
// API (POST/GET/DELETE /jobs) and a counter registry with SetCounters
// for GET /api/metrics.
type Server struct {
	mu       sync.RWMutex
	queries  map[string]QueryState
	jobsCtl  JobController
	counters *metrics.Registry
	sched    SchedulerReporter
}

// NewServer returns an empty Server.
func NewServer() *Server {
	return &Server{queries: make(map[string]QueryState)}
}

// Update publishes (or replaces) a query's state.
func (s *Server) Update(st QueryState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries[st.Name] = st
}

// UpdateFromSummary is a convenience wrapper building a QueryState from
// the executor's summary.
func (s *Server) UpdateFromSummary(name string, sum exec.Summary, progress float64, done bool) {
	s.Update(QueryState{
		Name:        name,
		Domain:      sum.Domain,
		Percentages: sum.Percentages,
		Reasons:     sum.Reasons,
		Items:       sum.Items,
		Progress:    progress,
		Done:        done,
	})
}

// Follow consumes one query's concurrent-pipeline stream, republishing
// the running summary after every finished HIT and marking the query done
// when the stream closes — Figure 4's live view fed directly by
// Engine.Stream. It blocks until the channel closes (run it in its own
// goroutine for a live page), always drains the channel, and returns the
// finished batches ordered by batch index together with the first batch
// error encountered.
//
// texts maps item IDs to their original text for reason extraction;
// totalItems, when positive, drives the progress fraction; exclude lists
// words kept out of the reason columns.
func (s *Server) Follow(name string, domain []string, texts map[string]string, totalItems int, ch <-chan engine.StreamResult, exclude ...string) ([]engine.BatchResult, error) {
	acc := exec.NewAccumulator(domain, exclude...)
	for id, text := range texts {
		acc.AddText(id, text)
	}
	byIndex := make(map[int]engine.BatchResult)
	var firstErr error
	for sr := range ch {
		if sr.Err != nil {
			if firstErr == nil {
				firstErr = sr.Err
			}
			continue
		}
		byIndex[sr.Index] = sr.Batch
		acc.Observe(exec.OutcomesFromResults(sr.Batch.Results)...)
		s.UpdateFromSummary(name, acc.Summary(), acc.Progress(totalItems), false)
	}
	// The stream is over either way, but a failed or cancelled query must
	// not present as 100% complete: keep the real progress and surface
	// the error on the state.
	sum := acc.Summary()
	final := QueryState{
		Name:        name,
		Domain:      sum.Domain,
		Percentages: sum.Percentages,
		Reasons:     sum.Reasons,
		Items:       sum.Items,
		Progress:    followProgress(acc.Items(), totalItems, firstErr == nil),
		Done:        true,
	}
	if firstErr != nil {
		final.Error = firstErr.Error()
	}
	s.Update(final)
	indices := make([]int, 0, len(byIndex))
	for i := range byIndex {
		indices = append(indices, i)
	}
	sort.Ints(indices)
	batches := make([]engine.BatchResult, 0, len(byIndex))
	for _, i := range indices {
		batches = append(batches, byIndex[i])
	}
	return batches, firstErr
}

// Get returns a query's state.
func (s *Server) Get(name string) (QueryState, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.queries[name]
	return st, ok
}

// Names lists registered queries, sorted.
func (s *Server) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.queries))
	for n := range s.queries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Handler returns the HTTP handler:
//
//	GET /                 HTML overview (Figure 4 style)
//	GET /api/queries      JSON list of query names
//	GET /api/query?name=  JSON state of one query
//	GET /api/metrics      operational counters (SetCounters)
//	GET /api/scheduler    cross-query scheduler state (SetScheduler)
//	POST   /jobs               submit a job (SetJobs)
//	GET    /jobs               all job lifecycle records
//	GET    /jobs/{name}        one job's state, progress and live results
//	DELETE /jobs/{name}        cancel a pending, parked or running job
//	POST   /jobs/{name}/unpark resume a budget-parked job
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/queries", s.handleList)
	mux.HandleFunc("GET /api/query", s.handleQuery)
	mux.HandleFunc("GET /api/metrics", s.handleMetrics)
	mux.HandleFunc("GET /api/scheduler", s.handleScheduler)
	mux.HandleFunc("POST /jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /jobs", s.handleListJobs)
	mux.HandleFunc("GET /jobs/{name}", s.handleGetJob)
	mux.HandleFunc("DELETE /jobs/{name}", s.handleCancelJob)
	mux.HandleFunc("POST /jobs/{name}/unpark", s.handleUnparkJob)
	mux.HandleFunc("GET /{$}", s.handleIndex)
	return mux
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Names())
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	st, ok := s.Get(name)
	if !ok {
		http.Error(w, fmt.Sprintf("no such query %q", name), http.StatusNotFound)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	states := make([]QueryState, 0, len(s.queries))
	for _, n := range s.Names() {
		states = append(states, s.queries[n])
	}
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTemplate.Execute(w, states); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// followProgress is the fraction Follow reports: observed items over the
// expectation, 1 for a complete healthy stream with no expectation set.
func followProgress(items, totalItems int, complete bool) float64 {
	if totalItems > 0 {
		return min(float64(items)/float64(totalItems), 1)
	}
	if complete {
		return 1
	}
	return 0
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

var indexTemplate = template.Must(template.New("index").Funcs(template.FuncMap{
	"pct": func(v float64) string { return fmt.Sprintf("%.1f%%", v*100) },
}).Parse(`<!DOCTYPE html>
<html>
<head><title>CDAS — live results</title></head>
<body>
<h1>CDAS — live query results</h1>
{{- if not .}}<p>No queries registered.</p>{{end}}
{{- range .}}
<section>
  <h2>{{.Name}} {{if .Error}}(failed at {{pct .Progress}}: {{.Error}}){{else if .Done}}(done){{else}}({{pct .Progress}} of answers in){{end}}</h2>
  <table border="1" cellpadding="4">
    <tr><th>answer</th><th>percentage</th><th>reasons</th></tr>
    {{- $st := .}}
    {{- range .Domain}}
    <tr>
      <td>{{.}}</td>
      <td>{{pct (index $st.Percentages .)}}</td>
      <td>{{range index $st.Reasons .}}{{.}} {{end}}</td>
    </tr>
    {{- end}}
  </table>
  <p>{{.Items}} items processed.</p>
</section>
{{- end}}
</body>
</html>
`))
