// Package amtapi exposes a crowd platform over an AMT-shaped REST
// protocol and provides a client that implements the engine's Platform
// interface on top of it.
//
// The paper's CDAS talks to Amazon Mechanical Turk through its HTTP API;
// this package reproduces that deployment shape: the engine can run in
// one process while the crowd marketplace (here: the simulator, in
// production: a real platform gateway) runs in another.
//
//	POST   /v1/hits                    create a HIT with n assignments
//	GET    /v1/hits/{id}               HIT status (charged, outstanding)
//	POST   /v1/hits/{id}/next          deliver the next submitted assignment
//	DELETE /v1/hits/{id}               cancel outstanding assignments
//
// Wire types carry only what a requester may see: worker IDs and approval
// rates cross the wire, workers' true accuracies never do (they are the
// simulator's god view).
package amtapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"cdas/internal/crowd"
)

// Wire types.

// QuestionWire mirrors crowd.Question. Truth is included because the
// requester owns the ground truth of its golden questions (and, for the
// simulator, drives answer generation); a production gateway would strip
// it before reaching real workers.
type QuestionWire struct {
	ID           string   `json:"id"`
	Text         string   `json:"text,omitempty"`
	Domain       []string `json:"domain"`
	Truth        string   `json:"truth,omitempty"`
	Difficulty   float64  `json:"difficulty,omitempty"`
	Trap         string   `json:"trap,omitempty"`
	TrapStrength float64  `json:"trapStrength,omitempty"`
}

// CreateHITRequest creates a HIT.
type CreateHITRequest struct {
	Title       string         `json:"title"`
	Questions   []QuestionWire `json:"questions"`
	Assignments int            `json:"assignments"`
}

// CreateHITResponse returns the platform-assigned HIT ID.
type CreateHITResponse struct {
	HITID string `json:"hitId"`
}

// AnswerWire is one answer inside an assignment.
type AnswerWire struct {
	QuestionID string `json:"questionId"`
	Value      string `json:"value"`
}

// AssignmentWire is one worker's submitted assignment.
type AssignmentWire struct {
	HITID        string       `json:"hitId"`
	WorkerID     string       `json:"workerId"`
	ApprovalRate float64      `json:"approvalRate"`
	Answers      []AnswerWire `json:"answers"`
	SubmitTime   float64      `json:"submitTime"`
}

// NextResponse delivers the next assignment; Done reports exhaustion.
type NextResponse struct {
	Assignment *AssignmentWire `json:"assignment,omitempty"`
	Done       bool            `json:"done"`
}

// StatusResponse reports a HIT's accounting state.
type StatusResponse struct {
	HITID       string  `json:"hitId"`
	Charged     float64 `json:"charged"`
	Delivered   int     `json:"delivered"`
	Outstanding int     `json:"outstanding"`
	Cancelled   bool    `json:"cancelled"`
}

func toWire(q crowd.Question) QuestionWire {
	return QuestionWire{
		ID: q.ID, Text: q.Text, Domain: q.Domain, Truth: q.Truth,
		Difficulty: q.Difficulty, Trap: q.Trap, TrapStrength: q.TrapStrength,
	}
}

func fromWire(q QuestionWire) crowd.Question {
	return crowd.Question{
		ID: q.ID, Text: q.Text, Domain: q.Domain, Truth: q.Truth,
		Difficulty: q.Difficulty, Trap: q.Trap, TrapStrength: q.TrapStrength,
	}
}

// Server exposes a *crowd.Platform over the REST protocol. Safe for
// concurrent use.
type Server struct {
	mu       sync.Mutex
	platform *crowd.Platform
	runs     map[string]*crowd.Run
}

// NewServer wraps a platform.
func NewServer(p *crowd.Platform) *Server {
	return &Server{platform: p, runs: make(map[string]*crowd.Run)}
}

// Handler returns the HTTP handler implementing the protocol.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/hits", s.handleCreate)
	mux.HandleFunc("GET /v1/hits/{id}", s.handleStatus)
	mux.HandleFunc("POST /v1/hits/{id}/next", s.handleNext)
	mux.HandleFunc("DELETE /v1/hits/{id}", s.handleCancel)
	return mux
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateHITRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "malformed request: "+err.Error(), http.StatusBadRequest)
		return
	}
	questions := make([]crowd.Question, len(req.Questions))
	for i, q := range req.Questions {
		questions[i] = fromWire(q)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	run, err := s.platform.Publish(crowd.HIT{Title: req.Title, Questions: questions}, req.Assignments)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	s.runs[run.HIT().ID] = run
	writeJSON(w, CreateHITResponse{HITID: run.HIT().ID})
}

func (s *Server) run(w http.ResponseWriter, r *http.Request) (*crowd.Run, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	run, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("no such HIT %q", id), http.StatusNotFound)
		return nil, false
	}
	return run, true
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request) {
	run, ok := s.run(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	a, more := run.Next()
	s.mu.Unlock()
	if !more {
		writeJSON(w, NextResponse{Done: true})
		return
	}
	answers := make([]AnswerWire, len(a.Answers))
	for i, ans := range a.Answers {
		answers[i] = AnswerWire{QuestionID: ans.QuestionID, Value: ans.Value}
	}
	writeJSON(w, NextResponse{Assignment: &AssignmentWire{
		HITID:        a.HITID,
		WorkerID:     a.Worker.ID,
		ApprovalRate: a.Worker.ApprovalRate,
		Answers:      answers,
		SubmitTime:   a.SubmitTime,
	}})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	run, ok := s.run(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	resp := StatusResponse{
		HITID:       run.HIT().ID,
		Charged:     run.Charged(),
		Delivered:   run.Delivered(),
		Outstanding: run.Outstanding(),
		Cancelled:   run.Cancelled(),
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	run, ok := s.run(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	run.Cancel()
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
