package httpapi

import (
	"context"
	"fmt"
	"testing"

	"cdas/internal/crowd"
	"cdas/internal/engine"
)

// TestFollowStreams runs a real pipeline into Follow and checks the
// published live state: progress reaches done, items add up, and the
// returned batches come back in batch order.
func TestFollowStreams(t *testing.T) {
	cfg := crowd.DefaultConfig(51)
	cfg.Workers = 200
	sim, err := crowd.NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.CrowdPlatform{Platform: sim}, nil, engine.Config{
		JobName:         "tsa",
		HITSize:         10,
		SamplingRate:    0.2,
		MaxInflightHITs: 4,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	domain := []string{"pos", "neu", "neg"}
	questions := make([]crowd.Question, 24)
	texts := make(map[string]string, len(questions))
	for i := range questions {
		id := fmt.Sprintf("q%02d", i)
		questions[i] = crowd.Question{ID: id, Text: "tweet " + id, Domain: domain, Truth: "pos"}
		texts[id] = "a wonderful movie moment"
	}
	golden := make([]crowd.Question, 10)
	for i := range golden {
		golden[i] = crowd.Question{ID: fmt.Sprintf("g%02d", i), Domain: domain, Truth: "neg"}
	}

	ch, err := eng.Stream(context.Background(), questions, golden)
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer()
	batches, err := server.Follow("panda", domain, texts, len(questions), ch)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 { // 24 questions / 8 real slots
		t.Fatalf("batches = %d, want 3", len(batches))
	}
	for i := 1; i < len(batches); i++ {
		if batches[i-1].HITID >= batches[i].HITID {
			t.Errorf("batches out of order: %s before %s", batches[i-1].HITID, batches[i].HITID)
		}
	}
	st, ok := server.Get("panda")
	if !ok {
		t.Fatal("query state missing after Follow")
	}
	if !st.Done || st.Progress != 1 {
		t.Errorf("state not done: done=%v progress=%v", st.Done, st.Progress)
	}
	if st.Items != len(questions) {
		t.Errorf("items = %d, want %d", st.Items, len(questions))
	}
	sum := 0.0
	for _, p := range st.Percentages {
		sum += p
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("percentages sum to %v, want ~1", sum)
	}
	if st.Error != "" {
		t.Errorf("healthy stream published error %q", st.Error)
	}
}

// TestFollowSurfacesFailure: a cancelled stream must not present as 100%
// complete — the state ends done with the error attached and the real
// (zero) progress.
func TestFollowSurfacesFailure(t *testing.T) {
	cfg := crowd.DefaultConfig(52)
	cfg.Workers = 200
	sim, err := crowd.NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.CrowdPlatform{Platform: sim}, nil, engine.Config{
		JobName:         "tsa",
		HITSize:         10,
		SamplingRate:    0.2,
		MaxInflightHITs: 2,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	domain := []string{"pos", "neg"}
	questions := make([]crowd.Question, 16)
	for i := range questions {
		questions[i] = crowd.Question{ID: fmt.Sprintf("q%02d", i), Domain: domain, Truth: "pos"}
	}
	golden := []crowd.Question{{ID: "g0", Domain: domain, Truth: "neg"}}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead on arrival: every batch surfaces context.Canceled
	ch, err := eng.Stream(ctx, questions, golden)
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer()
	batches, err := server.Follow("doomed", domain, nil, len(questions), ch)
	if err == nil {
		t.Fatal("Follow swallowed the stream failure")
	}
	if len(batches) != 0 {
		t.Errorf("cancelled stream produced %d batches", len(batches))
	}
	st, ok := server.Get("doomed")
	if !ok {
		t.Fatal("query state missing after failed Follow")
	}
	if !st.Done || st.Error == "" {
		t.Errorf("failed stream state: done=%v error=%q, want done with error", st.Done, st.Error)
	}
	if st.Progress != 0 {
		t.Errorf("failed stream progress = %v, want 0", st.Progress)
	}
}
