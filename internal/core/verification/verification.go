// Package verification implements CDAS's probability-based verification
// model (Section 4 of the paper) together with the two voting baselines it
// is evaluated against.
//
// Given the votes of n workers with known historical accuracies, the model
// computes for every candidate answer r the posterior probability
// P(r | Ω) of Equation 3, rewritten via worker confidences
// (Definition 2, c_j = ln((m-1) a_j / (1 - a_j))) into the softmax form of
// Definition 3 / Equation 4:
//
//	ρ(r) = exp(Σ_{f(u_j)=r} c_j) / Σ_{r_i} exp(Σ_{f(u_j)=r_i} c_j)
//
// The computation is carried out in log space (log-sum-exp) so that large
// crowds and extreme accuracies cannot overflow.
//
// The answer-domain size m is either supplied by the caller (m = |R| when
// the domain is known, e.g. {positive, neutral, negative}) or estimated
// from the number of distinct observed answers via Theorem 5's
// noise-pruning lower bound (see EstimateM).
package verification

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cdas/internal/stats"
)

// Vote is one worker's answer to one question, annotated with the
// worker's (estimated) historical accuracy.
type Vote struct {
	Worker   string  // worker identifier; informational
	Accuracy float64 // the worker's estimated accuracy a_j in [0, 1]
	Answer   string  // the answer f(u_j) the worker returned
}

// Scored is an answer together with its confidence ρ(r) (Definition 3).
type Scored struct {
	Answer     string
	Confidence float64
}

// ErrNoVotes reports verification over an empty vote set.
var ErrNoVotes = errors.New("verification: no votes")

// Result is a full verification outcome: all candidate answers ranked by
// confidence.
type Result struct {
	// Ranked lists every answer that received at least one vote, most
	// confident first.
	Ranked []Scored
	// M is the answer-domain size used in the confidence computation.
	M int
	// UnobservedMass is the total confidence assigned to the M - k domain
	// answers nobody voted for. Equation 4's denominator ranges over all
	// of R, so each unpicked answer contributes e^0 = 1 — the "weight
	// reduction" noise that motivates Theorem 5's m pruning. The ranked
	// confidences plus UnobservedMass sum to 1.
	UnobservedMass float64
}

// Best returns the top-ranked answer. It panics on an empty result, which
// Verify never produces.
func (r Result) Best() Scored { return r.Ranked[0] }

// Confidence returns the confidence assigned to answer, or 0 if nobody
// voted for it.
func (r Result) Confidence(answer string) float64 {
	for _, s := range r.Ranked {
		if s.Answer == answer {
			return s.Confidence
		}
	}
	return 0
}

// WorkerConfidence computes Definition 2's confidence
// c_j = ln((m-1) a_j / (1 - a_j)) for a worker of accuracy a in a domain
// of m possible answers. Accuracies are clamped away from {0,1} so the
// result is finite. m must be at least 2.
func WorkerConfidence(a float64, m int) float64 {
	if m < 2 {
		panic(fmt.Sprintf("verification: domain size m must be >= 2, got %d", m))
	}
	// ln((m-1) a/(1-a)) = ln(m-1) + logodds(a)
	return math.Log(float64(m-1)) + stats.LogOdds(a)
}

// Verify computes the confidence of every observed answer (Equation 4)
// and returns them ranked. m is the answer-domain size |R|; pass m <= 0 to
// estimate it from the observation via EstimateM with DefaultEpsilon
// (never below the number of distinct answers, and at least 2).
func Verify(votes []Vote, m int) (Result, error) {
	if len(votes) == 0 {
		return Result{}, ErrNoVotes
	}
	distinct := distinctAnswers(votes)
	k := len(distinct)
	if m <= 0 {
		m = EstimateM(k, DefaultEpsilon)
	}
	if m < k {
		m = k
	}
	if m < 2 {
		m = 2
	}

	// Sum worker confidences per answer (the log-space numerators of
	// Equation 4), then normalise. The denominator ranges over the whole
	// domain R: every answer without votes has an empty confidence sum
	// and contributes e^0 = 1.
	scores := make([]float64, k, m)
	for _, v := range votes {
		idx := sort.SearchStrings(distinct, v.Answer)
		scores[idx] += WorkerConfidence(v.Accuracy, m)
	}
	logits := scores
	for i := k; i < m; i++ {
		logits = append(logits, 0)
	}
	lse := stats.LogSumExp(logits)

	ranked := make([]Scored, k)
	for i, a := range distinct {
		ranked[i] = Scored{Answer: a, Confidence: math.Exp(scores[i] - lse)}
	}
	unobservedMass := float64(m-k) * math.Exp(-lse)
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Confidence != ranked[j].Confidence {
			return ranked[i].Confidence > ranked[j].Confidence
		}
		return ranked[i].Answer < ranked[j].Answer // deterministic tie-break
	})
	return Result{Ranked: ranked, M: m, UnobservedMass: unobservedMass}, nil
}

// distinctAnswers returns the sorted set of answers present in votes.
func distinctAnswers(votes []Vote) []string {
	seen := make(map[string]struct{}, 4)
	for _, v := range votes {
		seen[v.Answer] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
