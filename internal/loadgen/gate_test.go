package loadgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestProfileNamesAllResolveAndValidate(t *testing.T) {
	names := ProfileNames()
	if len(names) == 0 {
		t.Fatal("no named profiles")
	}
	for _, n := range names {
		p, ok := Named(n)
		if !ok {
			t.Fatalf("ProfileNames lists %q but Named rejects it", n)
		}
		v, err := p.Validate()
		if err != nil {
			t.Errorf("profile %q does not validate: %v", n, err)
			continue
		}
		w, err := BuildWorkload(v)
		if err != nil {
			t.Errorf("profile %q does not build: %v", n, err)
			continue
		}
		if got := w.TotalQuestions(); got != v.Tenants*v.QuestionsPerTenant*v.Rounds {
			t.Errorf("profile %q TotalQuestions = %d", n, got)
		}
	}
	if _, ok := Named("no-such-profile"); ok {
		t.Error("Named accepted an unknown profile")
	}
}

func TestNewBenchBaselineFillsEnvironment(t *testing.T) {
	fresh := BenchRun{Benchmarks: map[string]BenchResult{"BenchmarkX": {}}}
	b := NewBenchBaseline(fresh, "3x", "notes")
	if b.Schema != BenchSchema || b.Benchtime != "3x" || b.Notes != "notes" {
		t.Errorf("baseline header = %+v", b)
	}
	if b.GOOS == "" || b.GOARCH == "" || b.CPU == "" {
		t.Errorf("environment not backfilled: goos=%q goarch=%q cpu=%q", b.GOOS, b.GOARCH, b.CPU)
	}
	kept := BenchRun{GOOS: "plan9", GOARCH: "riscv64", CPU: "m1", Benchmarks: fresh.Benchmarks}
	if b2 := NewBenchBaseline(kept, "1x", ""); b2.GOOS != "plan9" || b2.GOARCH != "riscv64" || b2.CPU != "m1" {
		t.Errorf("bench-output environment not preserved: %+v", b2)
	}
}

func TestRecorderErrorCapIsBounded(t *testing.T) {
	r := &recorder{}
	for i := 0; i < 3*maxReportedErrors; i++ {
		r.addError("boom")
	}
	if len(r.errs) != maxReportedErrors {
		t.Errorf("recorder kept %d errors, want the %d cap", len(r.errs), maxReportedErrors)
	}
}

func TestProfileValidateErrors(t *testing.T) {
	base, _ := Named("smoke")
	cases := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"no tenants", func(p *Profile) { p.Tenants = 0 }},
		{"no questions", func(p *Profile) { p.QuestionsPerTenant = 0 }},
		{"overlap too big", func(p *Profile) { p.Overlap = 1.5 }},
		{"negative priorities", func(p *Profile) { p.PriorityLevels = -1 }},
		{"negative budget", func(p *Profile) { p.TenantBudget = -1 }},
		{"watcher fraction", func(p *Profile) { p.WatcherFraction = 2 }},
		{"negative arrival", func(p *Profile) { p.ArrivalMean = -time.Second }},
		{"accuracy", func(p *Profile) { p.RequiredAccuracy = 1.2 }},
		{"hit size", func(p *Profile) { p.HITSize = 1 }},
		{"unknown aggregator", func(p *Profile) { p.Aggregator = "consensus-9000" }},
		{"stream and enum", func(p *Profile) { p.Stream = true; p.Enum = true }},
		{"negative item value", func(p *Profile) { p.Enum = true; p.EnumItemValue = -1 }},
		{"negative universe", func(p *Profile) { p.Enum = true; p.EnumUniverse = -5 }},
		{"negative popularity", func(p *Profile) { p.Enum = true; p.EnumPopularity = -1 }},
		{"negative max batches", func(p *Profile) { p.Enum = true; p.EnumMaxBatches = -1 }},
	}
	for _, tc := range cases {
		p := base
		tc.mutate(&p)
		if _, err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, p)
		}
	}
	// Normalisation: questions round up to blocks, domains clip to
	// tenants, zero dispatchers default.
	p := base
	p.QuestionsPerTenant = BlockSize + 1
	p.Domains = 99
	p.Dispatchers = 0
	got, err := p.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if got.QuestionsPerTenant != 2*BlockSize || got.Domains != p.Tenants || got.Dispatchers < 1 {
		t.Fatalf("normalisation wrong: %+v", got)
	}
	if _, ok := Named("no-such-profile"); ok {
		t.Fatal("Named accepted an unknown profile")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := &Report{
		Schema:          ReportSchema,
		Profile:         Profile{Name: "smoke", Seed: 3, Tenants: 2},
		Deterministic:   true,
		QuestionsPerSec: 123,
		SpendJobs:       1.25,
		ResultsHash:     "cafe",
		Jobs:            JobsSummary{Total: 2, Done: 2},
	}
	path := filepath.Join(t.TempDir(), "rep.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Profile.Seed != 3 || got.SpendJobs != 1.25 || got.ResultsHash != "cafe" {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if tbl := rep.Table(); !strings.Contains(tbl, "results hash    cafe") {
		t.Fatalf("table rendering: %s", tbl)
	}
	// Schema guard.
	bad := &Report{Schema: "other"}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := bad.WriteJSON(badPath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(badPath); err == nil {
		t.Fatal("LoadReport accepted a foreign schema")
	}
}

const benchFixture = `goos: linux
goarch: amd64
pkg: cdas/internal/scheduler
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSchedulerDedup/jobs=8/overlap=50%-8         	       3	   1335007 ns/op	        37.50 %spend_saved	     95880 questions/s
BenchmarkSchedulerContention/jobs=64-8               	       1	  14170059 ns/op
BenchmarkEngineConcurrent/inflight=8                 	       2	   5000000 ns/op
PASS
ok  	cdas/internal/scheduler	2.154s
`

func TestParseBenchRunEnv(t *testing.T) {
	run, err := ParseBenchRun(strings.NewReader(benchFixture))
	if err != nil {
		t.Fatal(err)
	}
	if run.GOOS != "linux" || run.GOARCH != "amd64" || !strings.Contains(run.CPU, "Xeon") {
		t.Fatalf("environment header not parsed: %+v", run)
	}
	base := NewBenchBaseline(run, "3x", "n")
	if base.CPU != run.CPU || base.GOARCH != "amd64" {
		t.Fatalf("baseline env not taken from the run: %+v", base)
	}
	if w := base.EnvMismatch(run); len(w) != 0 {
		t.Fatalf("same env flagged: %v", w)
	}
	other := run
	other.CPU = "AMD EPYC 7B13"
	other.GOARCH = "arm64"
	if w := base.EnvMismatch(other); len(w) != 2 {
		t.Fatalf("mismatches not flagged: %v", w)
	}
}

func TestParseBenchOutput(t *testing.T) {
	got, err := ParseBenchOutput(strings.NewReader(benchFixture))
	if err != nil {
		t.Fatal(err)
	}
	dedup, ok := got["BenchmarkSchedulerDedup/jobs=8/overlap=50%"]
	if !ok {
		t.Fatalf("dedup bench missing (GOMAXPROCS suffix not stripped?): %v", got)
	}
	if dedup.NsPerOp != 1335007 {
		t.Fatalf("ns/op = %v", dedup.NsPerOp)
	}
	if dedup.Metrics[ThroughputMetric] != 95880 || dedup.Metrics["%spend_saved"] != 37.5 {
		t.Fatalf("metrics = %v", dedup.Metrics)
	}
	if _, ok := got["BenchmarkEngineConcurrent/inflight=8"]; !ok {
		t.Fatalf("unsuffixed bench name missing: %v", got)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benches, want 3", len(got))
	}
}

func TestParseBenchOutputKeepsBest(t *testing.T) {
	in := `BenchmarkX-8   3   200 ns/op   50 questions/s
BenchmarkX-8   3   100 ns/op   40 questions/s
`
	got, err := ParseBenchOutput(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	x := got["BenchmarkX"]
	if x.NsPerOp != 100 || x.Metrics[ThroughputMetric] != 50 {
		t.Fatalf("best-of merge wrong: %+v", x)
	}
	// Latency-style metrics keep the lowest value across repeats — the
	// best run, mirroring ns/op — while throughput keeps the highest.
	in = `BenchmarkBoot-8   3   200 ns/op   9.0 boot_ms   80 list_p99_us
BenchmarkBoot-8   3   100 ns/op   12.0 boot_ms   95 list_p99_us
`
	got, err = ParseBenchOutput(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	boot := got["BenchmarkBoot"]
	if boot.Metrics["boot_ms"] != 9.0 || boot.Metrics["list_p99_us"] != 80 {
		t.Fatalf("lower-is-better merge wrong: %+v", boot)
	}
	// Mixed units on one benchmark: each metric merges in its own
	// direction, even when the best values come from different repeats —
	// run 1 has the better tail latency, run 2 the better throughput.
	in = `BenchmarkServe-8   3   300 ns/op   70 list_p99_us   400 questions/s
BenchmarkServe-8   3   250 ns/op   90 list_p99_us   500 questions/s
`
	got, err = ParseBenchOutput(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	serve := got["BenchmarkServe"]
	if serve.NsPerOp != 250 || serve.Metrics["list_p99_us"] != 70 || serve.Metrics[ThroughputMetric] != 500 {
		t.Fatalf("mixed-direction merge wrong: %+v", serve)
	}
}

func TestCompareBench(t *testing.T) {
	base := BenchBaseline{
		Schema: BenchSchema,
		Benchmarks: map[string]BenchResult{
			"BenchmarkA": {NsPerOp: 1000, Metrics: map[string]float64{ThroughputMetric: 100}},
			"BenchmarkB": {NsPerOp: 1000},
		},
	}
	fresh := map[string]BenchResult{
		"BenchmarkA": {NsPerOp: 1250, Metrics: map[string]float64{ThroughputMetric: 80}},
		"BenchmarkB": {NsPerOp: 1290},
	}
	if v := CompareBench(base, fresh, 0.30); len(v) != 0 {
		t.Fatalf("within tolerance but flagged: %v", v)
	}
	// Inject a 2x slowdown: both the ns/op and throughput checks fire.
	fresh["BenchmarkA"] = BenchResult{NsPerOp: 2000, Metrics: map[string]float64{ThroughputMetric: 50}}
	v := CompareBench(base, fresh, 0.30)
	if len(v) != 2 {
		t.Fatalf("2x slowdown produced %d violations, want 2: %v", len(v), v)
	}
	// A missing benchmark fails loudly.
	delete(fresh, "BenchmarkB")
	if v := CompareBench(base, fresh, 0.30); len(v) != 3 {
		t.Fatalf("missing bench not flagged: %v", v)
	}
}

// TestCompareBenchLowerIsBetter gates the latency-style custom metrics
// (boot_ms, list_p99_us): growth past tolerance is a violation, shrink
// never is, and unknown custom units stay informational.
func TestCompareBenchLowerIsBetter(t *testing.T) {
	base := BenchBaseline{
		Schema: BenchSchema,
		Benchmarks: map[string]BenchResult{
			"BenchmarkStoreBoot/lsm": {NsPerOp: 5e6, Metrics: map[string]float64{"boot_ms": 5.0, "runs": 3}},
			"BenchmarkJobsListP99":   {NsPerOp: 1e5, Metrics: map[string]float64{"list_p99_us": 120}},
		},
	}
	fresh := map[string]BenchResult{
		"BenchmarkStoreBoot/lsm": {NsPerOp: 5e6, Metrics: map[string]float64{"boot_ms": 6.0, "runs": 900}},
		"BenchmarkJobsListP99":   {NsPerOp: 1e5, Metrics: map[string]float64{"list_p99_us": 60}},
	}
	// boot_ms +20% and list_p99_us halved: both inside a 30% gate, and
	// the unlisted "runs" metric exploding changes nothing.
	if v := CompareBench(base, fresh, 0.30); len(v) != 0 {
		t.Fatalf("within tolerance but flagged: %v", v)
	}
	// Slow the boot 2x and the listing tail 3x: one violation each.
	fresh["BenchmarkStoreBoot/lsm"] = BenchResult{NsPerOp: 5e6, Metrics: map[string]float64{"boot_ms": 10.0}}
	fresh["BenchmarkJobsListP99"] = BenchResult{NsPerOp: 1e5, Metrics: map[string]float64{"list_p99_us": 360}}
	v := CompareBench(base, fresh, 0.30)
	if len(v) != 2 {
		t.Fatalf("latency regressions produced %d violations, want 2: %v", len(v), v)
	}
	for _, msg := range v {
		if !strings.Contains(msg, "boot_ms") && !strings.Contains(msg, "list_p99_us") {
			t.Errorf("violation does not name the latency metric: %q", msg)
		}
	}
}

// TestCompareBenchMixedMetrics pins the gate's direction handling when a
// single benchmark carries both a throughput and a latency metric: each
// is judged its own way, so a fast-but-slow-tail run and a
// slow-but-tight-tail run each trip exactly the right check.
func TestCompareBenchMixedMetrics(t *testing.T) {
	base := BenchBaseline{
		Schema: BenchSchema,
		Benchmarks: map[string]BenchResult{
			"BenchmarkServe": {NsPerOp: 1000, Metrics: map[string]float64{
				ThroughputMetric: 1000,
				"list_p99_us":    100,
			}},
		},
	}
	// Throughput halves while the tail latency improves: only the
	// throughput check may fire — a lower list_p99_us must never count
	// against the run.
	fresh := map[string]BenchResult{
		"BenchmarkServe": {NsPerOp: 1000, Metrics: map[string]float64{
			ThroughputMetric: 500,
			"list_p99_us":    50,
		}},
	}
	v := CompareBench(base, fresh, 0.30)
	if len(v) != 1 || !strings.Contains(v[0], ThroughputMetric) {
		t.Fatalf("throughput-only regression: got %v", v)
	}
	// The mirror image: throughput improves, the tail doubles.
	fresh["BenchmarkServe"] = BenchResult{NsPerOp: 1000, Metrics: map[string]float64{
		ThroughputMetric: 2000,
		"list_p99_us":    200,
	}}
	v = CompareBench(base, fresh, 0.30)
	if len(v) != 1 || !strings.Contains(v[0], "list_p99_us") {
		t.Fatalf("latency-only regression: got %v", v)
	}
	// Both directions regress at once: two distinct violations.
	fresh["BenchmarkServe"] = BenchResult{NsPerOp: 1000, Metrics: map[string]float64{
		ThroughputMetric: 500,
		"list_p99_us":    200,
	}}
	if v := CompareBench(base, fresh, 0.30); len(v) != 2 {
		t.Fatalf("double regression produced %d violations, want 2: %v", len(v), v)
	}
}

func TestCompareE2E(t *testing.T) {
	mk := func() *Report {
		return &Report{
			Schema:          ReportSchema,
			Profile:         Profile{Name: "smoke", Seed: 1},
			GOARCH:          "amd64",
			Deterministic:   true,
			QuestionsPerSec: 1000,
			SpendLedger:     12.5,
			SpendJobs:       12.5,
			Jobs:            JobsSummary{Total: 8, Done: 8},
			ResultsHash:     "abc",
		}
	}
	base, fresh := mk(), mk()
	if v := CompareE2E(base, fresh, 0.30); len(v) != 0 {
		t.Fatalf("identical reports flagged: %v", v)
	}
	// 2x slowdown on throughput.
	fresh.QuestionsPerSec = 450
	if v := CompareE2E(base, fresh, 0.30); len(v) != 1 {
		t.Fatalf("throughput regression not flagged once: %v", v)
	}
	// Determinism regression: spend or hash divergence is a violation
	// regardless of tolerance.
	fresh = mk()
	fresh.SpendJobs = 12.6
	fresh.ResultsHash = "xyz"
	if v := CompareE2E(base, fresh, 0.30); len(v) != 2 {
		t.Fatalf("determinism regression produced %d violations, want 2: %v", len(v), v)
	}
	// Different goarch: determinism checks are skipped, throughput still
	// gates.
	fresh.GOARCH = "arm64"
	if v := CompareE2E(base, fresh, 0.30); len(v) != 0 {
		t.Fatalf("cross-arch run should skip determinism checks: %v", v)
	}
	// Partial runs always fail.
	fresh = mk()
	fresh.Partial = true
	if v := CompareE2E(base, fresh, 0.30); len(v) != 1 {
		t.Fatalf("partial run not flagged: %v", v)
	}
}

func TestCompareE2EEnum(t *testing.T) {
	mk := func() *Report {
		return &Report{
			Schema:        ReportSchema,
			Profile:       Profile{Name: "enum", Seed: 1},
			GOARCH:        "amd64",
			Deterministic: true,
			Jobs:          JobsSummary{Total: 4, Done: 4},
			ResultsHash:   "abc",
			Enum: &EnumSummary{
				Jobs: 4, Batches: 20, Contributions: 300, Distinct: 82,
				EstimateTotal: 124.8, MeanCompleteness: 0.67,
				Spent: 1.68, BudgetTotal: 8, StoppedMarginal: 4,
			},
		}
	}
	base, fresh := mk(), mk()
	if v := CompareE2E(base, fresh, 0.30); len(v) != 0 {
		t.Fatalf("identical enum reports flagged: %v", v)
	}
	// Budget exhaustion means the marginal rule never engaged.
	fresh.Enum.Spent = 8
	fresh.Enum.StoppedMarginal = 0
	fresh.Enum.StoppedOther = 4
	if v := CompareE2E(base, fresh, 0.30); len(v) != 2 {
		t.Fatalf("exhausted budget produced %d violations, want 2 (exhaustion + summary divergence): %v", len(v), v)
	}
	// A job that settled without a recorded stop reason is a violation.
	fresh = mk()
	fresh.Enum.StoppedMarginal = 3
	if v := CompareE2E(base, fresh, 0.30); len(v) != 2 {
		t.Fatalf("missing stop reason produced %d violations, want 2 (stop tally + summary divergence): %v", len(v), v)
	}
	// An enum baseline requires an enum summary in the fresh run.
	fresh = mk()
	fresh.Enum = nil
	if v := CompareE2E(base, fresh, 0.30); len(v) != 1 {
		t.Fatalf("enum-less fresh run produced %d violations, want 1: %v", len(v), v)
	}
	// Any drifted field is a determinism violation.
	fresh = mk()
	fresh.Enum.Distinct = 83
	if v := CompareE2E(base, fresh, 0.30); len(v) != 1 {
		t.Fatalf("drifted enum summary produced %d violations, want 1: %v", len(v), v)
	}
}

func TestCompareE2EMatrix(t *testing.T) {
	mk := func() *Report {
		return &Report{
			Schema:        ReportSchema,
			Profile:       Profile{Name: "smoke", Seed: 1},
			GOARCH:        "amd64",
			Deterministic: true,
			Jobs:          JobsSummary{Total: 1, Done: 1},
			ResultsHash:   "abc",
			Matrix: &AccuracyMatrix{
				Seed:        1,
				Questions:   24,
				Aggregators: []string{"cdas", "wawa"},
				Overlaps:    []int{3},
				Cells: []MatrixCell{
					{Aggregator: "cdas", MaxWorkers: 3, Questions: 24, Accuracy: 0.875, Votes: 72, Cost: 0.864},
					{Aggregator: "wawa", MaxWorkers: 3, Questions: 24, Accuracy: 0.917, Votes: 72, Cost: 0.864},
				},
			},
		}
	}
	base, fresh := mk(), mk()
	if v := CompareE2E(base, fresh, 0.30); len(v) != 0 {
		t.Fatalf("identical matrices flagged: %v", v)
	}
	// A drifted cell is a violation regardless of tolerance.
	fresh.Matrix.Cells[1].Accuracy = 0.875
	if v := CompareE2E(base, fresh, 0.30); len(v) != 1 {
		t.Fatalf("drifted matrix cell produced %d violations, want 1: %v", len(v), v)
	}
	// A missing cell is a violation.
	fresh = mk()
	fresh.Matrix.Cells = fresh.Matrix.Cells[:1]
	if v := CompareE2E(base, fresh, 0.30); len(v) != 1 {
		t.Fatalf("missing matrix cell produced %d violations, want 1: %v", len(v), v)
	}
	// A fresh run without a matrix (e.g. -matrix=false) skips the check.
	fresh = mk()
	fresh.Matrix = nil
	if v := CompareE2E(base, fresh, 0.30); len(v) != 0 {
		t.Fatalf("matrix-less fresh run should skip the matrix gate: %v", v)
	}
	// So does a matrix swept under a different seed.
	fresh = mk()
	fresh.Matrix.Seed = 2
	if v := CompareE2E(base, fresh, 0.30); len(v) != 0 {
		t.Fatalf("different-seed matrix should skip the matrix gate: %v", v)
	}
}

// TestBenchBaselineRoundTrip pins the baseline file format: WriteJSON
// then LoadBenchBaseline is the identity, and load rejects missing
// files, junk, foreign schemas and empty benchmark sets.
func TestBenchBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := BenchBaseline{
		Schema: BenchSchema,
		GOOS:   "linux", GOARCH: "amd64",
		Benchtime:  "3x",
		Benchmarks: map[string]BenchResult{"BenchmarkStanding": {NsPerOp: 916418}},
	}
	path := filepath.Join(dir, "BENCH_x.json")
	if err := base.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks["BenchmarkStanding"].NsPerOp != base.Benchmarks["BenchmarkStanding"].NsPerOp {
		t.Fatalf("round-trip = %+v, want %+v", got, base)
	}

	if _, err := LoadBenchBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBenchBaseline(junk); err == nil || !strings.Contains(err.Error(), "parsing") {
		t.Errorf("junk file err = %v", err)
	}
	wrong := base
	wrong.Schema = "other/v9"
	wrongPath := filepath.Join(dir, "wrong.json")
	if err := wrong.WriteJSON(wrongPath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBenchBaseline(wrongPath); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("foreign schema err = %v", err)
	}
	empty := base
	empty.Benchmarks = nil
	emptyPath := filepath.Join(dir, "empty.json")
	if err := empty.WriteJSON(emptyPath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBenchBaseline(emptyPath); err == nil || !strings.Contains(err.Error(), "no benchmarks") {
		t.Errorf("empty benchmarks err = %v", err)
	}
}
