// Accuracy-vs-cost matrix: engine-direct sweeps over (aggregation
// method × assignment overlap), scoring accepted answers against the
// synthetic stream's ground truth. Every cell runs against a fresh
// platform built from the same seed, so the worker population — and
// therefore the accuracy and spend differences between cells — is
// attributable to the aggregator and the overlap cap alone.
package loadgen

import (
	"fmt"
	"time"

	"cdas/internal/core/aggregate"
	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/jobs"
	"cdas/internal/textgen"
	"cdas/internal/tsa"
)

// MatrixCell is one (aggregator, overlap) measurement.
type MatrixCell struct {
	// Aggregator is the answer-aggregation method the cell ran.
	Aggregator string `json:"aggregator"`
	// MaxWorkers caps the planned assignments per question — the
	// overlap axis of the sweep.
	MaxWorkers int `json:"max_workers"`
	Questions  int `json:"questions"`
	// Accuracy is the fraction of questions whose accepted answer
	// matches ground truth.
	Accuracy float64 `json:"accuracy"`
	// Votes is the assignments actually consumed across the run.
	Votes int `json:"votes"`
	// Cost is the crowd fees charged (reposts included).
	Cost            float64 `json:"cost"`
	CostPerQuestion float64 `json:"cost_per_question"`
	// MeanConfidence / MeanQuality are the run summary's means over the
	// accepted answers.
	MeanConfidence float64 `json:"mean_confidence"`
	MeanQuality    float64 `json:"mean_quality"`
}

// AccuracyMatrix is the accuracy-vs-cost sweep attached to a report
// (and committed in the BENCH_e2e.json baseline).
type AccuracyMatrix struct {
	Seed        uint64       `json:"seed"`
	Questions   int          `json:"questions"`
	Aggregators []string     `json:"aggregators"`
	Overlaps    []int        `json:"overlaps"`
	Cells       []MatrixCell `json:"cells"`
}

// Cell looks a measurement up by its coordinates.
func (m *AccuracyMatrix) Cell(aggregator string, maxWorkers int) (MatrixCell, bool) {
	for _, c := range m.Cells {
		if c.Aggregator == aggregator && c.MaxWorkers == maxWorkers {
			return c, true
		}
	}
	return MatrixCell{}, false
}

// MatrixConfig shapes a RunMatrix sweep. Zero fields take defaults.
type MatrixConfig struct {
	// Seed drives the worker population, the tweet stream and the
	// golden placement of every cell.
	Seed uint64
	// Questions per cell (default 24).
	Questions int
	// Aggregators to sweep (default: the whole registry).
	Aggregators []string
	// Overlaps are the MaxWorkers caps to sweep (default 3, 7, 11).
	Overlaps []int
	// RequiredAccuracy is each cell's C (default 0.99 — high enough
	// that the planned per-question assignment count exceeds every
	// default overlap cap, so the MaxWorkers axis actually binds).
	RequiredAccuracy float64
	// HITSize is the questions per HIT (default 12).
	HITSize int
}

func (c MatrixConfig) withDefaults() MatrixConfig {
	if c.Questions <= 0 {
		c.Questions = 24
	}
	if len(c.Aggregators) == 0 {
		c.Aggregators = aggregate.Names()
	}
	if len(c.Overlaps) == 0 {
		c.Overlaps = []int{3, 7, 11}
	}
	if c.RequiredAccuracy == 0 {
		c.RequiredAccuracy = 0.99
	}
	if c.HITSize == 0 {
		c.HITSize = 12
	}
	return c
}

// RunMatrix executes the sweep: one engine-direct TSA run per
// (aggregator, overlap) cell, all against identically seeded platforms.
// The result is deterministic for a fixed config on a fixed
// architecture.
func RunMatrix(cfg MatrixConfig) (*AccuracyMatrix, error) {
	cfg = cfg.withDefaults()
	for _, name := range cfg.Aggregators {
		if err := aggregate.Validate(name); err != nil {
			return nil, fmt.Errorf("loadgen: matrix: %w", err)
		}
	}

	start := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	window := 24 * time.Hour
	const movie = "MATRIX00"
	stream, err := textgen.Generate(textgen.Config{
		Seed:           cfg.Seed + 1,
		Movies:         []string{movie},
		TweetsPerMovie: cfg.Questions,
		Start:          start,
		Span:           window,
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: matrix: generating stream: %w", err)
	}
	golden, err := textgen.Generate(textgen.Config{
		Seed:           cfg.Seed + 2,
		Movies:         []string{"CALIB000"},
		TweetsPerMovie: 32,
		Start:          start,
		Span:           window,
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: matrix: generating golden pool: %w", err)
	}
	q := tsa.Query(movie, cfg.RequiredAccuracy, start, window)

	m := &AccuracyMatrix{
		Seed:        cfg.Seed,
		Questions:   cfg.Questions,
		Aggregators: append([]string(nil), cfg.Aggregators...),
		Overlaps:    append([]int(nil), cfg.Overlaps...),
	}
	for _, name := range cfg.Aggregators {
		for _, overlap := range cfg.Overlaps {
			cell, err := runMatrixCell(cfg, name, overlap, q, stream, golden)
			if err != nil {
				return nil, fmt.Errorf("loadgen: matrix cell %s/w%d: %w", name, overlap, err)
			}
			m.Cells = append(m.Cells, cell)
		}
	}
	return m, nil
}

// runMatrixCell runs one cell on a fresh, identically seeded platform.
func runMatrixCell(cfg MatrixConfig, aggregator string, maxWorkers int, q jobs.Query, stream, golden []textgen.Tweet) (MatrixCell, error) {
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(cfg.Seed))
	if err != nil {
		return MatrixCell{}, err
	}
	eng, err := engine.New(engine.CrowdPlatform{Platform: platform}, nil, engine.Config{
		JobName:          fmt.Sprintf("matrix/%s/w%d", aggregator, maxWorkers),
		RequiredAccuracy: cfg.RequiredAccuracy,
		HITSize:          cfg.HITSize,
		MaxWorkers:       maxWorkers,
		Aggregator:       aggregator,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return MatrixCell{}, err
	}
	res, err := tsa.Run(eng, q, stream, golden)
	if err != nil {
		return MatrixCell{}, err
	}
	cell := MatrixCell{
		Aggregator:     aggregator,
		MaxWorkers:     maxWorkers,
		Accuracy:       res.Accuracy,
		MeanConfidence: res.Summary.Confidence,
		MeanQuality:    res.Summary.Quality,
	}
	for _, br := range res.Batches {
		cell.Questions += len(br.Results)
		cell.Votes += br.UsedWorkers
		cell.Cost += br.Cost
	}
	if cell.Questions > 0 {
		cell.CostPerQuestion = cell.Cost / float64(cell.Questions)
	}
	return cell, nil
}
