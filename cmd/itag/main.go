// Command itag runs the image-tagging application end to end on the
// simulated substrate: crowd workers pick tags for synthetic Flickr-style
// images, and the verification model aggregates them; the ALIPR-like
// automatic annotator provides the machine baseline.
//
// Usage:
//
//	itag [-subject sun] [-images 20] [-workers 5] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"cdas/internal/alipr"
	"cdas/internal/core/verification"
	"cdas/internal/crowd"
	"cdas/internal/imagetag"
)

func main() {
	var (
		subject = flag.String("subject", "sun", "image subject to tag")
		images  = flag.Int("images", 20, "number of images")
		workers = flag.Int("workers", 5, "workers per image")
		seed    = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if err := run(*subject, *images, *workers, *seed); err != nil {
		log.Fatalf("itag: %v", err)
	}
}

func run(subject string, images, workers int, seed uint64) error {
	const noise = 0.42
	trainImgs, err := imagetag.Generate(imagetag.Config{Seed: seed, ImagesPerSubject: 60, FeatureNoise: noise})
	if err != nil {
		return err
	}
	features := make([][]float64, len(trainImgs))
	tags := make([]string, len(trainImgs))
	for i, img := range trainImgs {
		features[i] = img.Features
		tags[i] = img.TrueTag
	}
	annotator, err := alipr.Train(features, tags, alipr.Options{K: 48, Seed: seed})
	if err != nil {
		return err
	}

	testImgs, err := imagetag.Generate(imagetag.Config{
		Seed:             seed + 1,
		Subjects:         []string{subject},
		ImagesPerSubject: images,
		FeatureNoise:     noise,
	})
	if err != nil {
		return err
	}

	cfg := crowd.DefaultConfig(seed + 2)
	cfg.AccuracyMean, cfg.AccuracySD, cfg.AccuracyLo, cfg.AccuracyHi = 0.85, 0.08, 0.5, 0.99
	platform, err := crowd.NewPlatform(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("Subject %q: %d images, %d workers each\n\n", subject, len(testImgs), workers)
	fmt.Printf("%-12s %-12s %-12s %-8s\n", "image", "truth", "crowd", "ALIPR")
	crowdCorrect, aliprCorrect := 0, 0
	for _, img := range testImgs {
		run, err := platform.Publish(crowd.HIT{Questions: []crowd.Question{img.Question()}}, workers)
		if err != nil {
			return err
		}
		var votes []verification.Vote
		for _, a := range run.Drain() {
			votes = append(votes, verification.Vote{
				Worker:   a.Worker.ID,
				Accuracy: a.Worker.Accuracy, // god view: itag demo skips sampling
				Answer:   a.AnswerTo(img.ID),
			})
		}
		res, err := verification.Verify(votes, len(img.Candidates))
		if err != nil {
			return err
		}
		crowdTag := res.Best().Answer
		aliprTag := annotator.Annotate(img.Features)
		if crowdTag == img.TrueTag {
			crowdCorrect++
		}
		if aliprTag == img.TrueTag {
			aliprCorrect++
		}
		fmt.Printf("%-12s %-12s %-12s %-8s\n", img.ID, img.TrueTag, crowdTag, aliprTag)
	}
	n := float64(len(testImgs))
	fmt.Printf("\ncrowd accuracy: %.3f   ALIPR accuracy: %.3f   total cost: $%.3f\n",
		float64(crowdCorrect)/n, float64(aliprCorrect)/n, platform.TotalSpent())
	return nil
}
