// Scheduled job runner: adapts a TSA query to the dispatcher's Runner
// contract through the cross-query crowd scheduler, so concurrent jobs
// share HIT batches, reuse cached verified answers and draw on one
// budget — instead of each dispatcher worker driving a private engine.
package tsa

import (
	"context"
	"errors"
	"fmt"

	"cdas/internal/exec"
	"cdas/internal/jobs"
	"cdas/internal/scheduler"
	"cdas/internal/textgen"
)

// ScheduledRunnerConfig wires NewScheduledJobRunner. Operational
// counters (cache hits, dedup, batches) live on the scheduler itself.
type ScheduledRunnerConfig struct {
	// Scheduler coalesces this runner's questions with every other
	// job's. Required.
	Scheduler *scheduler.Scheduler
	// Stream is the tweet stream jobs filter against.
	Stream []textgen.Tweet
	// API, when set, receives the job's summary when its generation
	// flushes (the Figure 4 dashboard).
	API ResultSink
}

// NewScheduledJobRunner builds a jobs.Runner that routes TSA queries
// through the cross-query scheduler: filter the stream, enqueue the
// matched questions with the job's priority and budget, and wait for
// the scheduler's generation to flush. Questions shared with other
// jobs are bought once; answers the cache already holds are free. A
// budget-refused run surfaces jobs.ErrParked, which the dispatcher
// turns into the resumable Parked state; a cancelled run abandons its
// ticket so the scheduler never purchases answers nobody will read.
//
// Progress and cost land when the generation flushes (results arrive
// per generation, not per HIT — the direct-engine tsa.NewJobRunner
// remains the choice when per-batch streaming matters more than
// cross-query sharing), including the partial spend of a run that
// failed mid-generation. A run cancelled mid-flush cannot report (its
// terminal record rejects late progress by design); its spend stays
// visible in the durable budget ledger (jobs.Service.Budget and
// GET /api/scheduler).
func NewScheduledJobRunner(cfg ScheduledRunnerConfig) jobs.Runner {
	// The gate derives from the scheduler itself — a second accuracy
	// knob here would be one flag-sync bug away from silently
	// under-verifying.
	serviceAcc := cfg.Scheduler.ServiceAccuracy()
	return func(ctx context.Context, job jobs.Job, report func(progress, cost float64)) error {
		if job.Query.RequiredAccuracy > serviceAcc+1e-9 {
			// The shared engine verifies every question to the service
			// level; a stricter guarantee cannot be honoured, and
			// pretending otherwise would be a silent regression.
			return fmt.Errorf("%w: tsa: job requires accuracy %v above the service level %v",
				jobs.ErrPermanent, job.Query.RequiredAccuracy, serviceAcc)
		}
		if derr := ValidateDomain(job.Query.Domain); derr != nil {
			// The platform would reject every HIT (truth not in domain);
			// deterministic, so don't burn retries on it.
			return fmt.Errorf("%w: %w", jobs.ErrPermanent, derr)
		}
		m := Match(job.Query, cfg.Stream)
		if len(m.Tweets) == 0 {
			// A keyword filter matching nothing is deterministic: retrying
			// replays the same outcome.
			return fmt.Errorf("%w: tsa: no tweets matched query %v", jobs.ErrPermanent, job.Query.Keywords)
		}
		ticket, err := cfg.Scheduler.Enqueue(scheduler.Request{
			Job:        job.Name,
			Priority:   job.Priority,
			Budget:     job.Budget,
			Aggregator: job.Aggregator,
			Questions:  QuestionsInDomain(m.Tweets, job.Query.Domain),
		})
		if err != nil {
			return fmt.Errorf("%w: tsa: %w", jobs.ErrPermanent, err)
		}
		res, err := ticket.Wait(ctx)
		switch {
		case errors.Is(err, scheduler.ErrParked):
			return fmt.Errorf("%w: %w", jobs.ErrParked, err)
		case errors.Is(err, ctx.Err()) && ctx.Err() != nil:
			// Cancelled while queued or flushing: withdraw the ticket so
			// an unflushed generation doesn't publish for a dead job.
			ticket.Abandon()
			return err
		case err != nil:
			// A generation that died mid-flight may still have charged
			// for its surviving domain groups; record that spend before
			// surfacing the failure.
			if res.Cost > 0 {
				report(float64(len(res.Results))/float64(len(m.Tweets)), res.Cost)
			}
			return err
		}
		report(1, res.Cost)
		if cfg.API != nil {
			acc := exec.NewAccumulator(job.Query.Domain, job.Query.Keywords...)
			for id, text := range m.Texts {
				acc.AddText(id, text)
			}
			acc.Observe(exec.OutcomesFromResults(res.Results)...)
			cfg.API.UpdateFromSummary(job.Name, acc.Summary(), 1, true)
		}
		return nil
	}
}
