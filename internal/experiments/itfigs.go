package experiments

import (
	"fmt"

	"cdas/internal/alipr"
	"cdas/internal/core/prediction"
	"cdas/internal/crowd"
	"cdas/internal/imagetag"
	"cdas/internal/stats"
)

// itPlatform builds the IT worker population: image tagging is an easier
// perceptual task than sentiment reading, so the accuracy distribution
// sits higher (the paper's crowd exceeds 80% with a single worker).
func itPlatform(seed uint64) (*crowd.Platform, error) {
	cfg := crowd.DefaultConfig(seed)
	cfg.Workers = 300
	cfg.AccuracyMean = 0.85
	cfg.AccuracySD = 0.08
	cfg.AccuracyLo = 0.5
	cfg.AccuracyHi = 0.99
	return crowd.NewPlatform(cfg)
}

// itGolden builds the golden pool for IT sampling: verified images from a
// held-out subject.
func itGolden(seed uint64, count int) ([]crowd.Question, error) {
	imgs, err := imagetag.Generate(imagetag.Config{
		Seed:             seed,
		Subjects:         []string{"forest"},
		ImagesPerSubject: count,
	})
	if err != nil {
		return nil, err
	}
	out := make([]crowd.Question, len(imgs))
	for i, img := range imgs {
		q := img.Question()
		q.ID = "golden/" + q.ID
		out[i] = q
	}
	return out, nil
}

// Figure17 compares crowdsourcing (1/3/5 workers) with the ALIPR-like
// automatic annotator on the five Figure 17 subjects, 20 images each.
func Figure17(seed uint64) (Table, error) {
	// Train the annotator on a separate corpus draw (its "pre-training").
	// The feature noise is calibrated so the annotator lands in ALIPR's
	// measured 12.6-30% band — clearly above chance (~2% over the global
	// tag vocabulary), far below the crowd.
	const fig17Noise = 0.42
	trainImgs, err := imagetag.Generate(imagetag.Config{Seed: seed, ImagesPerSubject: 100, FeatureNoise: fig17Noise})
	if err != nil {
		return Table{}, err
	}
	features := make([][]float64, len(trainImgs))
	tags := make([]string, len(trainImgs))
	for i, img := range trainImgs {
		features[i] = img.Features
		tags[i] = img.TrueTag
	}
	annotator, err := alipr.Train(features, tags, alipr.Options{K: 48, Seed: seed + 1})
	if err != nil {
		return Table{}, err
	}

	testImgs, err := imagetag.Generate(imagetag.Config{
		Seed:             seed + 2,
		Subjects:         imagetag.Figure17Subjects,
		ImagesPerSubject: 20,
		FeatureNoise:     fig17Noise,
	})
	if err != nil {
		return Table{}, err
	}
	platform, err := itPlatform(seed + 3)
	if err != nil {
		return Table{}, err
	}
	golden, err := itGolden(seed+4, 20)
	if err != nil {
		return Table{}, err
	}

	bySubject := make(map[string][]imagetag.Image)
	for _, img := range testImgs {
		bySubject[img.Subject] = append(bySubject[img.Subject], img)
	}
	tbl := Table{
		ID:      "fig17",
		Title:   "Crowdsourcing vs ALIPR accuracy per subject (20 images each)",
		Columns: []string{"subject", "ALIPR", "1 worker", "3 workers", "5 workers"},
		Notes:   "ALIPR stays in the 10-30% band; the crowd exceeds 80% with one worker",
	}
	for _, subject := range imagetag.Figure17Subjects {
		imgs := bySubject[subject]
		correct := 0
		questions := make([]crowd.Question, len(imgs))
		for i, img := range imgs {
			if annotator.Annotate(img.Features) == img.TrueTag {
				correct++
			}
			questions[i] = img.Question()
		}
		aliprAcc := float64(correct) / float64(len(imgs))

		c, err := collect(platform, questions, golden, 5)
		if err != nil {
			return Table{}, err
		}
		row := []string{subject, fmtF(aliprAcc)}
		for _, n := range []int{1, 3, 5} {
			acc, _ := c.evalPrefix(modelVerification, n, c.estAcc)
			row = append(row, fmtF(acc))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}

// Figure18 measures IT real accuracy against the user-required accuracy
// with the full pipeline (prediction + verification).
func Figure18(seed uint64) (Table, error) {
	imgs, err := imagetag.Generate(imagetag.Config{
		Seed:             seed,
		Subjects:         imagetag.Figure17Subjects,
		ImagesPerSubject: 20,
	})
	if err != nil {
		return Table{}, err
	}
	questions := make([]crowd.Question, len(imgs))
	for i, img := range imgs {
		questions[i] = img.Question()
	}
	platform, err := itPlatform(seed + 1)
	if err != nil {
		return Table{}, err
	}
	golden, err := itGolden(seed+2, 20)
	if err != nil {
		return Table{}, err
	}
	mu := platform.MeanAccuracy()
	model, err := prediction.New(stats.ClampProb(mu))
	if err != nil {
		return Table{}, err
	}
	maxN, err := model.RequiredWorkers(0.96)
	if err != nil {
		return Table{}, err
	}
	c, err := collect(platform, questions, golden, maxN)
	if err != nil {
		return Table{}, err
	}
	tbl := Table{
		ID:      "fig18",
		Title:   fmt.Sprintf("IT real accuracy vs required accuracy (mu=%.3f)", mu),
		Columns: []string{"required", "planned workers", "real accuracy"},
		Notes:   "the full pipeline satisfies the requirement at every point",
	}
	for req := 0.80; req <= 0.961; req += 0.02 {
		n, err := model.RequiredWorkers(req)
		if err != nil {
			return Table{}, err
		}
		acc, _ := c.evalPrefix(modelVerification, n, c.estAcc)
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprintf("%.2f", req), fmt.Sprint(n), fmtF(acc)})
	}
	return tbl, nil
}
