// The enums command group: cdasctl enums <list|submit|get|cancel|
// watch> drives the /v1/enumerations surface — open-ended enumeration
// jobs whose crowd contributions grow a deduped result set until the
// marginal value of the next HIT batch no longer covers its price.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"

	"cdas/api"
	"cdas/client"
)

// cmdEnums dispatches the enums sub-subcommands.
func cmdEnums(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		args = []string{"list"}
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "list":
		return cmdEnumList(ctx, c, rest, stdout, stderr)
	case "submit":
		return cmdEnumSubmit(ctx, c, rest, stdout, stderr)
	case "get":
		if len(rest) != 1 {
			return fmt.Errorf("expected exactly one enumeration name, got %d args", len(rest))
		}
		return printJSON(stdout)(c.Enumeration(ctx, rest[0]))
	case "cancel":
		// An enumeration is a job underneath; cancel goes through the
		// job surface.
		return oneJob(rest, func(name string) (api.JobStatus, error) { return c.CancelJob(ctx, name) }, stdout)
	case "watch":
		if len(rest) != 1 {
			return fmt.Errorf("expected exactly one enumeration name, got %d args", len(rest))
		}
		return watchEnum(ctx, c, rest[0], stdout)
	default:
		return fmt.Errorf("unknown enums subcommand %q (want list, submit, get, cancel or watch)", sub)
	}
}

func cmdEnumList(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("enums list", flag.ContinueOnError)
	fs.SetOutput(stderr)
	state := fs.String("state", "", "filter by lifecycle state (pending, running, parked, done, failed, cancelled)")
	limit := fs.Int("limit", 0, "page size hint (the iterator still fetches every page)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tw := newTabWriter(stdout)
	fmt.Fprintln(tw, "NAME\tSTATE\tBATCHES\tDISTINCT\tESTIMATE\tCOMPLETE\tSPENT\tSTOPPED\tERROR")
	n := 0
	for st, err := range c.Enumerations(ctx, client.ListJobsOptions{Limit: *limit, State: api.JobState(*state)}) {
		if err != nil {
			tw.Flush()
			return err
		}
		total, complete := "-", "-"
		if est := st.Estimate; est != nil {
			total = fmt.Sprintf("%.1f", est.Total)
			complete = fmt.Sprintf("%.0f%%", est.Completeness*100)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\t%s\t%.3f\t%s\t%s\n",
			st.Name, st.State, st.Batches, st.Distinct, total, complete, st.Spent, st.Stopped, st.Error)
		n++
	}
	tw.Flush()
	fmt.Fprintf(stdout, "%d enumeration(s)\n", n)
	return nil
}

func cmdEnumSubmit(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("enums submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name       = fs.String("name", "", "enumeration name (required)")
		keywords   = fs.String("keywords", "", "comma-separated task keywords (required)")
		itemValue  = fs.Float64("item-value", 0, "worth of one new member, in HIT-price currency (required, > 0)")
		coverage   = fs.Float64("target-coverage", 0, "stop once the completeness estimate reaches this (0 = disabled)")
		maxBatches = fs.Int("max-batches", 0, "cap on HIT batches (0 = unlimited)")
		hitWorkers = fs.Int("hit-workers", 0, "workers per batch (0 = server default)")
		perWorker  = fs.Int("per-worker", 0, "members asked of each worker (0 = server default)")
		universe   = fs.Int("universe", 0, "built-in source hidden-set size (0 = server default)")
		popularity = fs.Float64("popularity", 0, "built-in source Zipf skew exponent (0 = default)")
		seed       = fs.Uint64("source-seed", 0, "built-in source draw seed")
		priority   = fs.Int("priority", 0, "budget-admission priority (higher first)")
		budget     = fs.Float64("budget", 0, "crowd-spend cap (0 = unlimited)")
		watch      = fs.Bool("watch", false, "stream discovered items after submitting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *keywords == "" {
		return fmt.Errorf("enums submit needs -name and -keywords")
	}
	st, err := c.SubmitJob(ctx, api.JobSubmission{
		Name:     *name,
		Kind:     api.KindEnumeration,
		Keywords: splitList(*keywords),
		Priority: *priority,
		Budget:   *budget,
		Enum: &api.EnumSpec{
			ItemValue:      *itemValue,
			TargetCoverage: *coverage,
			MaxBatches:     *maxBatches,
			HITWorkers:     *hitWorkers,
			PerWorker:      *perWorker,
			Universe:       *universe,
			Popularity:     *popularity,
			SourceSeed:     *seed,
		},
	})
	if err != nil {
		return err
	}
	if err := printJSON(stdout)(st, nil); err != nil {
		return err
	}
	if *watch {
		return watchEnum(ctx, c, *name, stdout)
	}
	return nil
}

// watchEnum streams batch-completion SSE events, rendering one line per
// batch — newly discovered members spelled out — until the terminal
// event arrives.
func watchEnum(ctx context.Context, c *client.Client, name string, stdout io.Writer) error {
	events, err := c.WatchEnumeration(ctx, name)
	if err != nil {
		return err
	}
	for ev := range events {
		if ev.Err != nil {
			return ev.Err
		}
		st := ev.Event.State
		estimate := ""
		if est := st.Estimate; est != nil {
			estimate = fmt.Sprintf(" total~%.1f complete=%.0f%%", est.Total, est.Completeness*100)
		}
		if b := ev.Event.Batch; b != nil {
			news := ""
			for _, it := range b.NewItems {
				news += " +" + it.Text
			}
			fmt.Fprintf(stdout, "%s rev=%d batch=%d contributions=%d new=%d cost=%.3f%s%s\n",
				ev.Type, ev.ID, b.Batch, b.Contributions, len(b.NewItems), b.Cost, estimate, news)
		} else {
			stopped := ""
			if st.Stopped != "" {
				stopped = " stopped=" + st.Stopped
			}
			fmt.Fprintf(stdout, "%s rev=%d batches=%d distinct=%d spent=%.3f%s%s\n",
				ev.Type, ev.ID, st.Batches, st.Distinct, st.Spent, estimate, stopped)
		}
		if ev.Type == api.EventDone {
			if st.Error != "" {
				return fmt.Errorf("enumeration %q finished with error: %s", name, st.Error)
			}
			return nil
		}
	}
	return fmt.Errorf("watch %q: stream ended before the terminal event", name)
}
