package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cdas/api"
	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
	"cdas/internal/scheduler"
	"cdas/internal/standing"
	"cdas/internal/textgen"
)

// streamHarness is a full standing-query stack over real HTTP: LSM job
// service, simulated crowd, standing runner publishing into the
// server, and a kind-routed dispatcher so batch jobs coexist.
type streamHarness struct {
	*e2eHarness
	svc  *jobs.Service
	disp *jobs.Dispatcher
}

func newStreamHarness(t *testing.T, publishDelay time.Duration) *streamHarness {
	t.Helper()
	reg := metrics.NewRegistry()
	svc, err := jobs.OpenService(jobs.ServiceConfig{Dir: t.TempDir(), Engine: jobs.EngineLSM, Counters: reg})
	if err != nil {
		t.Fatal(err)
	}
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	golden := make([]crowd.Question, 12)
	for i := range golden {
		golden[i] = crowd.Question{
			ID:     fmt.Sprintf("golden/g%03d", i),
			Text:   fmt.Sprintf("Calibration tweet #%d", i),
			Domain: append([]string(nil), textgen.Labels...),
			Truth:  textgen.LabelNeutral,
		}
	}
	var pf engine.Platform = engine.CrowdPlatform{Platform: platform}
	if publishDelay > 0 {
		pf = slowStreamPlatform{Platform: pf, delay: publishDelay}
	}
	sched, err := scheduler.New(scheduler.Config{
		Platform: pf,
		Engine:   engine.Config{HITSize: 20, MaxInflightHITs: 4, Seed: 9},
		Golden:   golden,
		OnCharge: func(job string, amount float64) { _ = svc.ChargeBudget(job, amount) },
		Counters: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sched.Close)
	srv := NewServer()
	standingRunner := standing.NewRunner(standing.RunnerConfig{
		Scheduler: sched,
		Coord:     standing.NewCoordinator(sched, 0),
		Marks:     svc,
		Counters:  reg,
		Publish:   srv.StandingPublisher(),
	})
	runner := func(ctx context.Context, job jobs.Job, report func(progress, cost float64)) error {
		if job.Kind == jobs.KindContinuous {
			return standingRunner(ctx, job, report)
		}
		report(1, 0)
		return nil
	}
	disp, err := jobs.NewDispatcher(svc, runner, 2)
	if err != nil {
		t.Fatal(err)
	}
	disp.Start()
	srv.SetJobs(disp)
	srv.SetCounters(reg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
		disp.Stop()
	})
	return &streamHarness{
		e2eHarness: &e2eHarness{t: t, ts: ts, client: ts.Client()},
		svc:        svc,
		disp:       disp,
	}
}

type slowStreamPlatform struct {
	engine.Platform
	delay time.Duration
}

func (p slowStreamPlatform) Publish(hit crowd.HIT, n int) (engine.Run, error) {
	time.Sleep(p.delay)
	return p.Platform.Publish(hit, n)
}

func streamSubmission(name string) api.StreamSubmission {
	return api.StreamSubmission{
		Name:             name,
		Keywords:         []string{"Thor"},
		RequiredAccuracy: 0.85,
		Domain:           append([]string(nil), textgen.Labels...),
		Start:            "2011-10-01T00:00:00Z",
		Window:           "1m",
		Items:            24,
		Rate:             1,
		SourceSeed:       5,
		WindowCapacity:   5,
		MaxBacklog:       10,
	}
}

func (h *streamHarness) streamStatus(name string) (api.StreamStatus, int) {
	h.t.Helper()
	resp, body := h.do(http.MethodGet, "/v1/streams/"+name, nil)
	if resp.StatusCode != http.StatusOK {
		return api.StreamStatus{}, resp.StatusCode
	}
	var st api.StreamStatus
	if err := json.Unmarshal(body, &st); err != nil {
		h.t.Fatalf("decoding stream %s: %v (%s)", name, err, body)
	}
	return st, resp.StatusCode
}

func (h *streamHarness) waitStream(name, what string, cond func(api.StreamStatus) bool) api.StreamStatus {
	h.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var last api.StreamStatus
	for time.Now().Before(deadline) {
		st, code := h.streamStatus(name)
		if code == http.StatusOK {
			last = st
			if cond(st) {
				return st
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.t.Fatalf("stream %q never reached %s (last: %+v)", name, what, last)
	return api.StreamStatus{}
}

// sseStreamFrames reads SSE frames from /v1/streams/{name}/events until
// a done event, the frame budget, or the timeout.
func (h *streamHarness) sseStreamFrames(name string, lastEventID string) ([]string, []api.StreamEvent) {
	h.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.ts.URL+"/v1/streams/"+name+"/events", nil)
	if err != nil {
		h.t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		h.t.Fatalf("SSE connect = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		h.t.Fatalf("SSE Content-Type = %q", ct)
	}
	var kinds []string
	var events []api.StreamEvent
	var kind, data string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data != "" {
				var ev api.StreamEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					h.t.Fatalf("bad SSE payload %q: %v", data, err)
				}
				kinds = append(kinds, kind)
				events = append(events, ev)
				if kind == api.EventDone {
					return kinds, events
				}
			}
			kind, data = "", ""
		case strings.HasPrefix(line, "event: "):
			kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	h.t.Fatalf("SSE ended without a done event (kinds %v)", kinds)
	return nil, nil
}

// TestStreamAPIEndToEnd drives the full stream surface over real HTTP:
// submit a standing query, watch its window closes over SSE to the
// terminal done event, inspect and list it, and probe every error
// path the route family owns.
func TestStreamAPIEndToEnd(t *testing.T) {
	h := newStreamHarness(t, 0)

	resp, body := h.do(http.MethodPost, "/v1/streams", streamSubmission("thor"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/streams = %d (%s)", resp.StatusCode, body)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/streams/thor" {
		t.Errorf("Location = %q", loc)
	}
	var created api.StreamStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("decoding created stream: %v (%s)", err, body)
	}
	if created.Name != "thor" || len(created.Keywords) != 1 {
		t.Errorf("created = %+v", created)
	}

	// The SSE watcher must observe at least one window close and the
	// terminal done event (or, if the stream already finished, just the
	// done replay).
	kinds, events := h.sseStreamFrames("thor", "")
	if kinds[len(kinds)-1] != api.EventDone {
		t.Fatalf("last SSE kind = %q, want done (kinds %v)", kinds[len(kinds)-1], kinds)
	}
	final := events[len(events)-1].State
	if !final.Done || final.WindowsClosed == 0 || final.Seen == 0 {
		t.Errorf("terminal SSE state = %+v", final)
	}
	for i, k := range kinds {
		if k == api.EventWindow && events[i].Window == nil {
			t.Errorf("window event %d carried no window", i)
		}
	}

	st := h.waitStream("thor", "done", func(st api.StreamStatus) bool { return st.Done })
	if st.State != api.JobDone || st.WindowsClosed == 0 || st.Spent <= 0 || st.Matched == 0 {
		t.Errorf("final stream status = %+v", st)
	}
	if st.LastWindow == nil || st.LastWindow.Items < 0 {
		t.Errorf("final status carries no last window: %+v", st)
	}
	if st.Results == nil || len(st.Results.Percentages) == 0 {
		t.Errorf("final status carries no running fold: %+v", st)
	}
	// A finished stream replays straight to done on a fresh watcher.
	kinds, _ = h.sseStreamFrames("thor", "")
	if len(kinds) != 1 || kinds[0] != api.EventDone {
		t.Errorf("post-done SSE kinds = %v, want [done]", kinds)
	}

	// The standing query also surfaces on the query dashboard.
	if resp, body := h.do(http.MethodGet, "/v1/queries/thor", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/queries/thor = %d (%s)", resp.StatusCode, body)
	}

	// Listing: streams only — batch jobs are excluded.
	if resp, _ := h.do(http.MethodPost, "/v1/jobs", submission("batchjob")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/jobs = %d", resp.StatusCode)
	}
	resp, body = h.do(http.MethodGet, "/v1/streams", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/streams = %d", resp.StatusCode)
	}
	var list api.StreamList
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Streams) != 1 || list.Streams[0].Name != "thor" {
		t.Errorf("stream list = %+v, want just thor", list.Streams)
	}
	// A batch job is not a stream on the singular routes either.
	if _, code := h.streamStatus("batchjob"); code != http.StatusNotFound {
		t.Errorf("GET batch job as stream = %d, want 404", code)
	}

	// Error surface.
	if resp, _ := h.do(http.MethodPost, "/v1/streams", streamSubmission("thor")); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate stream = %d, want 409", resp.StatusCode)
	}
	for field, mutate := range map[string]func(*api.StreamSubmission){
		"window":      func(s *api.StreamSubmission) { s.Window = "not a duration" },
		"lateness":    func(s *api.StreamSubmission) { s.Lateness = "soon" },
		"target_fill": func(s *api.StreamSubmission) { s.TargetFill = "eventually" },
		"start":       func(s *api.StreamSubmission) { s.Start = "yesterday" },
		"name":        func(s *api.StreamSubmission) { s.Name = "a/b" },
		"accuracy":    func(s *api.StreamSubmission) { s.RequiredAccuracy = 2 },
	} {
		sub := streamSubmission("bad-" + field)
		mutate(&sub)
		if resp, body := h.do(http.MethodPost, "/v1/streams", sub); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad %s = %d (%s), want 400", field, resp.StatusCode, body)
		}
	}
	sub := streamSubmission("bad-agg")
	sub.Aggregator = "nope"
	resp, body = h.do(http.MethodPost, "/v1/streams", sub)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "unknown_aggregator") {
		t.Errorf("unknown aggregator = %d (%s), want 400 unknown_aggregator", resp.StatusCode, body)
	}
	if _, code := h.streamStatus("ghost"); code != http.StatusNotFound {
		t.Errorf("GET unknown stream = %d, want 404", code)
	}
	if resp, _ := h.do(http.MethodDelete, "/v1/streams/ghost", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown stream = %d, want 404", resp.StatusCode)
	}
	if resp, _ := h.do(http.MethodGet, "/v1/streams/ghost/events", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("SSE unknown stream = %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, h.ts.URL+"/v1/streams/thor/events", nil)
	req.Header.Set("Last-Event-ID", "junk")
	if resp, err := h.client.Do(req); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad Last-Event-ID = %v %d, want 400", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	// Cancelling a finished stream conflicts.
	if resp, _ := h.do(http.MethodDelete, "/v1/streams/thor", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("DELETE done stream = %d, want 409", resp.StatusCode)
	}
}

// TestStreamAPICancelMidRun cancels a standing query while its windows
// are still closing: DELETE answers with the cancelled record, and an
// SSE watcher that never saw a published done event gets one
// synthesized from the terminal job state instead of hanging.
func TestStreamAPICancelMidRun(t *testing.T) {
	h := newStreamHarness(t, 15*time.Millisecond)

	sub := streamSubmission("slow")
	sub.Items = 96
	if resp, body := h.do(http.MethodPost, "/v1/streams", sub); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/streams = %d (%s)", resp.StatusCode, body)
	}

	watcher := make(chan []string, 1)
	go func() {
		kinds, _ := h.sseStreamFrames("slow", "")
		watcher <- kinds
	}()

	h.waitStream("slow", "running", func(st api.StreamStatus) bool {
		return st.State == api.JobRunning
	})
	resp, body := h.do(http.MethodDelete, "/v1/streams/slow", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE mid-run = %d (%s)", resp.StatusCode, body)
	}
	st := h.waitStream("slow", "cancelled", func(st api.StreamStatus) bool {
		return st.State == api.JobCancelled
	})
	if !st.Done {
		t.Errorf("cancelled stream not done: %+v", st)
	}
	select {
	case kinds := <-watcher:
		if kinds[len(kinds)-1] != api.EventDone {
			t.Errorf("watcher kinds = %v, want terminal done", kinds)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("SSE watcher hung after cancel")
	}
}

// TestStreamStatusRecoveredFromMark pins the restart contract for
// stream reads: a Server that has never seen a publish (a fresh
// process) answers GET /v1/streams/{name} from the durable stream mark
// via the controller's StreamMarkFor, not with zeroed counters.
func TestStreamStatusRecoveredFromMark(t *testing.T) {
	h := newStreamHarness(t, 0)
	if resp, body := h.do(http.MethodPost, "/v1/streams", streamSubmission("thor")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/streams = %d (%s)", resp.StatusCode, body)
	}
	done := h.waitStream("thor", "done", func(st api.StreamStatus) bool { return st.Done })

	// A second Server over the same controller emulates the restarted
	// process: its in-memory publish map is empty.
	fresh := NewServer()
	fresh.SetJobs(h.disp)
	ts := httptest.NewServer(fresh.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/streams/thor")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st api.StreamStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.State != api.JobDone {
		t.Fatalf("recovered stream = %+v", st)
	}
	if st.WindowsClosed != done.WindowsClosed || st.Seen != done.Seen ||
		st.Matched != done.Matched || st.Spent != done.Spent {
		t.Errorf("recovered counters = %+v, want those of %+v", st, done)
	}
	if st.WindowsClosed == 0 || st.Spent <= 0 {
		t.Errorf("recovered stream lost its mark: %+v", st)
	}
}
