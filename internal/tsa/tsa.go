// Package tsa implements the Twitter sentiment analytics application of
// the paper (Sections 2.2 and 5.1): queries of the form (S, C, R, t, w)
// are matched against a tweet stream by the program executor, candidate
// tweets are batched into HITs by the crowdsourcing engine, and accepted
// answers are summarised into the percentages-plus-reasons presentation
// of Table 1 / Figure 4.
package tsa

import (
	"context"
	"errors"
	"fmt"
	"time"

	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/exec"
	"cdas/internal/jobs"
	"cdas/internal/textgen"
)

// Query builds the TSA query of Definition 1 for one movie: keywords
// {title}, the required accuracy, domain {Positive, Neutral, Negative},
// and the time window.
func Query(movie string, requiredAccuracy float64, start time.Time, window time.Duration) jobs.Query {
	return jobs.Query{
		Keywords:         []string{movie},
		RequiredAccuracy: requiredAccuracy,
		Domain:           append([]string(nil), textgen.Labels...),
		Start:            start,
		Window:           window,
	}
}

// FilterTweets applies the query's keyword and window filters to the
// stream — the executor half of the TSA plan.
func FilterTweets(tweets []textgen.Tweet, q jobs.Query) []textgen.Tweet {
	out := make([]textgen.Tweet, 0, len(tweets))
	for _, t := range tweets {
		if q.Matches(t.Text, t.At) {
			out = append(out, t)
		}
	}
	return out
}

// Questions converts tweets to crowd questions over the default TSA
// domain (textgen.Labels).
func Questions(tweets []textgen.Tweet) []crowd.Question {
	qs := make([]crowd.Question, len(tweets))
	for i, t := range tweets {
		qs[i] = t.Question()
	}
	return qs
}

// QuestionsInDomain converts tweets to crowd questions answered over the
// query's own domain R (Definition 1) instead of the default labels. The
// domain must contain the sentiment truth labels (see ValidateDomain) —
// a superset such as textgen.Labels plus extra answers is fine. Passing
// a domain equal to textgen.Labels reproduces Questions exactly, so
// standard TSA jobs are unaffected; distinct domains also schedule as
// distinct cross-query groups (a worker asked to pick from a different
// answer set is doing different work, so their questions never
// coalesce).
func QuestionsInDomain(tweets []textgen.Tweet, domain []string) []crowd.Question {
	qs := make([]crowd.Question, len(tweets))
	for i, t := range tweets {
		q := t.Question()
		q.Domain = append([]string(nil), domain...)
		qs[i] = q
	}
	return qs
}

// ValidateDomain checks that a TSA query's answer domain can host the
// sentiment questions: every truth label must appear verbatim, or the
// platform would reject each HIT at publish time ("truth not in
// domain"). That failure is deterministic — retrying replays it — so
// runners surface it as permanent instead of burning the retry budget.
func ValidateDomain(domain []string) error {
	for _, label := range textgen.Labels {
		found := false
		for _, d := range domain {
			if d == label {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("tsa: query domain %v does not contain the sentiment label %q (must be a superset of %v)",
				domain, label, textgen.Labels)
		}
	}
	return nil
}

// GoldenQuestions builds the golden pool from tweets whose labels the
// requester has verified (the paper embeds αB such questions per HIT).
// Golden IDs are prefixed to avoid colliding with live questions.
func GoldenQuestions(tweets []textgen.Tweet) []crowd.Question {
	qs := make([]crowd.Question, len(tweets))
	for i, t := range tweets {
		q := t.Question()
		q.ID = "golden/" + q.ID
		qs[i] = q
	}
	return qs
}

// Matched is the executor's view of one query's filtered stream: the
// matching tweets plus the text and ground-truth lookups downstream
// consumers (summaries, accuracy scoring, live result pages) need.
type Matched struct {
	Tweets []textgen.Tweet
	// Texts maps tweet ID to original text, for reason extraction.
	Texts map[string]string
	// Truths maps tweet ID to the simulated ground-truth label.
	Truths map[string]string
}

// Match filters the stream against the query and indexes the matches.
func Match(q jobs.Query, stream []textgen.Tweet) Matched {
	tweets := FilterTweets(stream, q)
	m := Matched{
		Tweets: tweets,
		Texts:  make(map[string]string, len(tweets)),
		Truths: make(map[string]string, len(tweets)),
	}
	for _, t := range tweets {
		m.Texts[t.ID] = t.Text
		m.Truths[t.ID] = t.Truth
	}
	return m
}

// Accuracy scores batches against ground truth: the fraction of answered
// questions whose accepted answer matches truths, and how many questions
// were answered. answered == 0 yields accuracy 0.
func Accuracy(batches []engine.BatchResult, truths map[string]string) (accuracy float64, answered int) {
	correct := 0
	for _, br := range batches {
		for _, qr := range br.Results {
			answered++
			if qr.Answer == truths[qr.Question.ID] {
				correct++
			}
		}
	}
	if answered == 0 {
		return 0, 0
	}
	return float64(correct) / float64(answered), answered
}

// Result is one processed TSA query.
type Result struct {
	Query   jobs.Query
	Summary exec.Summary
	// Accuracy is the fraction of filtered tweets whose accepted answer
	// matches ground truth (the paper's evaluation metric).
	Accuracy float64
	// Tweets is the number of tweets that passed the filter.
	Tweets  int
	Batches []engine.BatchResult
}

// Run executes one TSA query end to end: filter → batch → crowdsource →
// verify → summarise. golden supplies the ground-truth pool for accuracy
// sampling. Batches go through Engine.ProcessAll, so an engine configured
// with MaxInflightHITs > 1 overlaps its HITs on the platform.
func Run(eng *engine.Engine, q jobs.Query, stream, golden []textgen.Tweet) (Result, error) {
	return run(nil, eng, q, stream, golden)
}

// RunContext executes the query through the engine's concurrent pipeline
// (Engine.ProcessAllContext): cancelling ctx cancels the in-flight HITs
// on the platform without charging for their outstanding assignments.
// Even at MaxInflightHITs = 1 the pipeline differs from Run's sequential
// path (explicit HIT IDs, one profile snapshot per wave), so the two may
// return different — both valid and individually deterministic — numbers
// for the same engine configuration.
func RunContext(ctx context.Context, eng *engine.Engine, q jobs.Query, stream, golden []textgen.Tweet) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return run(ctx, eng, q, stream, golden)
}

// run is the shared body; a nil ctx selects Engine.ProcessAll (the legacy
// sequential path at MaxInflightHITs = 1), a non-nil ctx the pipeline.
func run(ctx context.Context, eng *engine.Engine, q jobs.Query, stream, golden []textgen.Tweet) (Result, error) {
	if eng == nil {
		return Result{}, errors.New("tsa: engine is required")
	}
	if err := q.Validate(); err != nil {
		return Result{}, err
	}
	if err := ValidateDomain(q.Domain); err != nil {
		return Result{}, err
	}
	m := Match(q, stream)
	if len(m.Tweets) == 0 {
		return Result{}, fmt.Errorf("tsa: no tweets matched query %v", q.Keywords)
	}
	questions := QuestionsInDomain(m.Tweets, q.Domain)
	var batches []engine.BatchResult
	var err error
	if ctx != nil {
		batches, err = eng.ProcessAllContext(ctx, questions, GoldenQuestions(golden))
	} else {
		batches, err = eng.ProcessAll(questions, GoldenQuestions(golden))
	}
	if err != nil {
		return Result{}, err
	}

	acc := exec.NewAccumulator(q.Domain, q.Keywords...)
	for id, text := range m.Texts {
		acc.AddText(id, text)
	}
	for _, br := range batches {
		acc.Observe(exec.OutcomesFromResults(br.Results)...)
	}
	accuracy, _ := Accuracy(batches, m.Truths)
	return Result{
		Query:    q,
		Summary:  acc.Summary(),
		Accuracy: accuracy,
		Tweets:   len(m.Tweets),
		Batches:  batches,
	}, nil
}

// SplitByMovie partitions tweets into those about the given movies and
// the rest — the train/test split of the Figure 5 SVM comparison (test on
// 5 movies, train on the other 195).
func SplitByMovie(tweets []textgen.Tweet, testMovies []string) (test, train []textgen.Tweet) {
	isTest := make(map[string]bool, len(testMovies))
	for _, m := range testMovies {
		isTest[m] = true
	}
	for _, t := range tweets {
		if isTest[t.Movie] {
			test = append(test, t)
		} else {
			train = append(train, t)
		}
	}
	return test, train
}

// Corpus flattens tweets into parallel document/label slices for the SVM
// baseline.
func Corpus(tweets []textgen.Tweet) (docs, labels []string) {
	docs = make([]string, len(tweets))
	labels = make([]string, len(tweets))
	for i, t := range tweets {
		docs[i] = t.Text
		labels[i] = t.Truth
	}
	return docs, labels
}
