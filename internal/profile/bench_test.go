package profile

import (
	"fmt"
	"sync"
	"testing"
)

// mutexStore is the pre-striping implementation (one RWMutex over the
// whole store), kept as the benchmark baseline.
type mutexStore struct {
	mu   sync.RWMutex
	jobs map[string]*jobCounts
}

func (s *mutexStore) Record(job, worker string, correct bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jc, ok := s.jobs[job]
	if !ok {
		jc = newJobCounts()
		s.jobs[job] = jc
	}
	jc.Total[worker]++
	if correct {
		jc.Correct[worker]++
	}
}

// benchWorkers mirrors the simulator's population: many distinct worker
// IDs, each goroutine cycling through its own slice.
func benchWorkers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("w%04d", i)
	}
	return out
}

// BenchmarkStoreRecordParallel measures the striped store's Record
// under parallel writers — the engine pipeline's per-assignment path.
func BenchmarkStoreRecordParallel(b *testing.B) {
	s := NewStore()
	workers := benchWorkers(512)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.Record("job", workers[i%len(workers)], i%3 != 0)
			i++
		}
	})
}

// BenchmarkMutexStoreRecordParallel is the old single-lock equivalent.
func BenchmarkMutexStoreRecordParallel(b *testing.B) {
	s := &mutexStore{jobs: make(map[string]*jobCounts)}
	workers := benchWorkers(512)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.Record("job", workers[i%len(workers)], i%3 != 0)
			i++
		}
	})
}
