package crowdops

import (
	"fmt"
	"testing"

	"cdas/internal/crowd"
	"cdas/internal/engine"
)

func testEngine(t *testing.T, seed uint64) *engine.Engine {
	t.Helper()
	cfg := crowd.DefaultConfig(seed)
	cfg.Workers = 200
	p, err := crowd.NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.CrowdPlatform{Platform: p}, nil, engine.Config{
		JobName:          "crowdops",
		RequiredAccuracy: 0.92,
		SamplingRate:     0.2,
		HITSize:          40,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func goldenPool(n int) []crowd.Question {
	out := make([]crowd.Question, n)
	for i := range out {
		out[i] = crowd.Question{
			ID:     fmt.Sprintf("golden/%d", i),
			Text:   "golden",
			Domain: []string{"yes", "no"},
			Truth:  []string{"yes", "no"}[i%2],
		}
	}
	return out
}

func TestFilter(t *testing.T) {
	eng := testEngine(t, 1)
	items := []Item{
		{ID: "a", Text: "a cat on a mat", FilterTruth: true},
		{ID: "b", Text: "a dog in a bog", FilterTruth: false},
		{ID: "c", Text: "two cats sparring", FilterTruth: true},
		{ID: "d", Text: "an empty hallway", FilterTruth: false},
		{ID: "e", Text: "a kitten yawning", FilterTruth: true},
		{ID: "f", Text: "a parked bicycle", FilterTruth: false},
	}
	res, err := Filter(eng, "Does this photo contain a cat?", items, goldenPool(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(items) {
		t.Fatalf("results = %d, want %d", len(res), len(items))
	}
	correct := 0
	for _, r := range res {
		if r.Keep == r.Item.FilterTruth {
			correct++
		}
		if r.Confidence <= 0 || r.Confidence > 1 {
			t.Errorf("item %s: confidence %v", r.Item.ID, r.Confidence)
		}
	}
	if correct < len(items)-1 {
		t.Errorf("filter got %d/%d correct", correct, len(items))
	}
}

func TestFilterValidation(t *testing.T) {
	eng := testEngine(t, 2)
	if _, err := Filter(nil, "p", []Item{{ID: "a"}}, nil); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := Filter(eng, "", []Item{{ID: "a"}}, nil); err == nil {
		t.Error("empty predicate accepted")
	}
	res, err := Filter(eng, "p", nil, nil)
	if err != nil || res != nil {
		t.Errorf("empty input should be a no-op, got %v/%v", res, err)
	}
}

func TestJoin(t *testing.T) {
	eng := testEngine(t, 3)
	left := []Item{
		{ID: "l1", Text: "IBM Corp.", Key: "ibm"},
		{ID: "l2", Text: "Apple Inc.", Key: "apple"},
	}
	right := []Item{
		{ID: "r1", Text: "International Business Machines", Key: "ibm"},
		{ID: "r2", Text: "Apple Computer", Key: "apple"},
		{ID: "r3", Text: "Banana Republic", Key: "banana"},
	}
	pairs, err := Join(eng, left, right, goldenPool(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 6 {
		t.Fatalf("pairs = %d, want 6", len(pairs))
	}
	correct := 0
	for _, p := range pairs {
		want := p.Left.Key == p.Right.Key
		if p.Match == want {
			correct++
		}
	}
	if correct < 5 {
		t.Errorf("join got %d/6 verdicts right", correct)
	}
	matches := Matches(pairs)
	for _, m := range matches {
		if !m.Match {
			t.Error("Matches returned a non-match")
		}
	}
}

func TestJoinBudget(t *testing.T) {
	eng := testEngine(t, 4)
	big := make([]Item, 50)
	for i := range big {
		big[i] = Item{ID: fmt.Sprintf("x%d", i)}
	}
	if _, err := Join(eng, big, big, nil); err == nil {
		t.Error("2500-pair join should exceed the budget")
	}
	if pairs, err := Join(eng, nil, big, nil); err != nil || pairs != nil {
		t.Errorf("empty side should be a no-op, got %v/%v", pairs, err)
	}
}

func TestSort(t *testing.T) {
	eng := testEngine(t, 5)
	items := []Item{
		{ID: "c", Text: "three stars", Rank: 3},
		{ID: "a", Text: "one star", Rank: 1},
		{ID: "e", Text: "five stars", Rank: 5},
		{ID: "b", Text: "two stars", Rank: 2},
		{ID: "d", Text: "four stars", Rank: 4},
	}
	sorted, err := Sort(eng, "Which review is more favourable?", items, goldenPool(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(sorted) != 5 {
		t.Fatalf("sorted length = %d", len(sorted))
	}
	// Kendall-tau style check: count inversions; allow at most one
	// adjacent slip from crowd noise.
	inversions := 0
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[i].Rank > sorted[j].Rank {
				inversions++
			}
		}
	}
	if inversions > 1 {
		t.Errorf("crowd sort has %d inversions: %+v", inversions, sorted)
	}
}

func TestSortSmallInputs(t *testing.T) {
	eng := testEngine(t, 6)
	if got, err := Sort(eng, "c", nil, nil); err != nil || len(got) != 0 {
		t.Errorf("empty sort = %v/%v", got, err)
	}
	one := []Item{{ID: "only"}}
	got, err := Sort(eng, "c", one, nil)
	if err != nil || len(got) != 1 {
		t.Fatalf("singleton sort = %v/%v", got, err)
	}
	// Must be a copy, not the caller's slice.
	got[0].ID = "mutated"
	if one[0].ID == "mutated" {
		t.Error("Sort must copy its input")
	}
}

func TestSortBudget(t *testing.T) {
	eng := testEngine(t, 7)
	big := make([]Item, 100)
	for i := range big {
		big[i] = Item{ID: fmt.Sprintf("x%d", i), Rank: i}
	}
	if _, err := Sort(eng, "c", big, nil); err == nil {
		t.Error("4950-comparison sort should exceed the budget")
	}
}
