package engine

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"cdas/internal/crowd"
)

// latencyPlatform wraps the simulator so every delivered assignment costs
// wall-clock time — the trickle of a real marketplace. It records the
// runs it hands out and signals the first delivery, so tests can cancel
// pipelines deterministically mid-HIT.
type latencyPlatform struct {
	inner *crowd.Platform
	delay time.Duration

	mu   sync.Mutex
	runs []*latencyRun

	firstDelivery chan struct{}
	once          sync.Once
}

func newLatencyPlatform(t testing.TB, seed uint64, delay time.Duration) (*latencyPlatform, *crowd.Platform) {
	t.Helper()
	cfg := crowd.DefaultConfig(seed)
	cfg.Workers = 300
	sim, err := crowd.NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &latencyPlatform{inner: sim, delay: delay, firstDelivery: make(chan struct{})}, sim
}

func (p *latencyPlatform) Publish(hit crowd.HIT, n int) (Run, error) {
	run, err := p.inner.Publish(hit, n)
	if err != nil {
		return nil, err
	}
	lr := &latencyRun{Run: run, p: p}
	p.mu.Lock()
	p.runs = append(p.runs, lr)
	p.mu.Unlock()
	return lr, nil
}

func (p *latencyPlatform) Runs() []*latencyRun {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*latencyRun(nil), p.runs...)
}

type latencyRun struct {
	*crowd.Run
	p *latencyPlatform
}

func (r *latencyRun) Next() (crowd.Assignment, bool) {
	a, ok := r.Run.Next()
	if ok {
		r.p.once.Do(func() { close(r.p.firstDelivery) })
		time.Sleep(r.p.delay)
	}
	return a, ok
}

// pipelineFixture runs one 5-batch pipeline on a fresh platform and
// engine, so tests can compare complete result sets across runs and
// in-flight settings.
func pipelineFixture(t *testing.T, inflight int) []BatchResult {
	t.Helper()
	platform, _ := newTestPlatform(t, 21)
	e, err := New(platform, nil, Config{
		JobName:         "tsa",
		HITSize:         10,
		SamplingRate:    0.2,
		MaxInflightHITs: inflight,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 40 questions, 8 real slots per HIT -> 5 batches.
	res, err := e.ProcessAllContext(context.Background(), makeQuestions("r", 40, "pos"), makeQuestions("g", 12, "neg"))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPipelineOrderingAndCoverage(t *testing.T) {
	res := pipelineFixture(t, 4)
	if len(res) != 5 {
		t.Fatalf("batches = %d, want 5", len(res))
	}
	total := 0
	seen := make(map[string]bool)
	for i, br := range res {
		if br.HITID == "" {
			t.Errorf("batch %d missing HIT ID", i)
		}
		for _, qr := range br.Results {
			if seen[qr.Question.ID] {
				t.Errorf("question %s answered twice", qr.Question.ID)
			}
			seen[qr.Question.ID] = true
			total++
		}
	}
	if total != 40 {
		t.Errorf("total results = %d, want 40", total)
	}
	// Batch i must cover the i-th chunk: the first batch holds the first
	// 8 question IDs, in ID order within the batch.
	if got := len(res[0].Results); got != 8 {
		t.Errorf("first batch has %d results, want 8", got)
	}
}

// TestPipelineDeterministic reruns an identical pipeline and demands
// bit-for-bit equal results: per-HIT derived seeds and snapshot-based
// vote weights make the outcome independent of goroutine scheduling.
func TestPipelineDeterministic(t *testing.T) {
	a := pipelineFixture(t, 8)
	b := pipelineFixture(t, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical pipelines diverged across runs")
	}
}

// TestPipelineInflightInvariant demands the same results whether HITs
// run one at a time or eight abreast.
func TestPipelineInflightInvariant(t *testing.T) {
	seq := pipelineFixture(t, 1)
	conc := pipelineFixture(t, 8)
	if !reflect.DeepEqual(seq, conc) {
		t.Fatal("results depend on MaxInflightHITs")
	}
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (small slack for runtime helpers), failing with a full stack
// dump on timeout — the goroutine-leak check for pipeline shutdown.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
}

// TestPipelineCancelMidHIT cancels the context while assignments are
// draining and asserts the three shutdown guarantees: the pipeline
// returns ctx's error, every goroutine exits, and cancelled runs are
// charged exactly once per delivered assignment — never for the
// outstanding ones.
func TestPipelineCancelMidHIT(t *testing.T) {
	baseline := runtime.NumGoroutine()
	lp, sim := newLatencyPlatform(t, 22, 2*time.Millisecond)
	e, err := New(lp, nil, Config{
		JobName:         "tsa",
		HITSize:         10,
		SamplingRate:    0.2,
		MaxInflightHITs: 4,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := e.ProcessAllContext(ctx, makeQuestions("r", 40, "pos"), makeQuestions("g", 12, "neg"))
		errc <- err
	}()
	<-lp.firstDelivery // at least one HIT is mid-drain
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("pipeline error = %v, want context.Canceled", err)
	}
	waitGoroutines(t, baseline)

	// Every delivered assignment was charged exactly once, and nothing
	// outstanding on a cancelled run was ever charged.
	fee := sim.Config().Economics.PerAssignment()
	var charged float64
	delivered := 0
	for _, lr := range lp.Runs() {
		charged += lr.Charged()
		delivered += lr.Delivered()
		if lr.Outstanding() != 0 && !lr.Cancelled() {
			t.Errorf("run %s left outstanding work without cancellation", lr.HIT().ID)
		}
	}
	if math.Abs(charged-float64(delivered)*fee) > 1e-9 {
		t.Errorf("charged %v for %d delivered assignments (fee %v): double charge", charged, delivered, fee)
	}
	if got := sim.TotalSpent(); math.Abs(got-charged) > 1e-9 {
		t.Errorf("platform spent %v, runs charged %v", got, charged)
	}
	// The spend must stay frozen: no stray goroutine keeps draining.
	spent := sim.TotalSpent()
	time.Sleep(20 * time.Millisecond)
	if got := sim.TotalSpent(); got != spent {
		t.Errorf("spend moved after shutdown: %v -> %v", spent, got)
	}
}

// TestProcessBatchContextPreCancelled publishes nothing extra and charges
// nothing when the context is dead on arrival.
func TestProcessBatchContextPreCancelled(t *testing.T) {
	platform, sim := newTestPlatform(t, 23)
	e, err := New(platform, nil, Config{JobName: "tsa", HITSize: 10, SamplingRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ProcessBatchContext(ctx, makeQuestions("r", 4, "pos"), makeQuestions("g", 10, "neg")); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if got := sim.TotalSpent(); got != 0 {
		t.Errorf("cancelled batch still charged %v", got)
	}
}

// TestPipelineWallClockSpeedup is the concurrency payoff check: on a
// platform where each assignment takes real time to arrive, 8 in-flight
// HITs must finish the same workload at least twice as fast as one at a
// time. The modelled gap is ~8x, so the 2x bar holds through heavy CI
// noise.
func TestPipelineWallClockSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	measure := func(inflight int) time.Duration {
		lp, _ := newLatencyPlatform(t, 24, 2*time.Millisecond)
		e, err := New(lp, nil, Config{
			JobName:         "tsa",
			HITSize:         10,
			SamplingRate:    0.2,
			MaxInflightHITs: inflight,
			Seed:            7,
		})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := e.ProcessAllContext(context.Background(), makeQuestions("r", 64, "pos"), makeQuestions("g", 12, "neg")); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	seq := measure(1)
	conc := measure(8)
	if conc > seq/2 {
		t.Errorf("8 in-flight HITs took %v vs %v sequential; want >= 2x speedup", conc, seq)
	}
}
