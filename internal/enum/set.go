// The growing result set of an enumeration job: free-text contributions
// keyed by the scheduler's canonical item identity, with the
// frequency-of-frequencies feeding the Chao92 estimate. Snapshots round-
// trip through jobs.EnumProgress so the set rides the durable stream
// mark.
package enum

import (
	"sort"

	"cdas/internal/jobs"
	"cdas/internal/scheduler"
	"cdas/internal/stats"
)

// Item is one discovered set member.
type Item struct {
	// Key is the canonical identity (scheduler.ItemKey of the text).
	Key string `json:"key"`
	// Text is the normalised display form of the member.
	Text string `json:"text"`
	// Count is how many contributions named it.
	Count int `json:"count"`
	// Batch is the HIT batch that first surfaced it.
	Batch int `json:"batch"`
}

// ResultSet accumulates contributions by canonical identity. It is not
// safe for concurrent use; the runner owns it.
type ResultSet struct {
	counts  map[string]int
	display map[string]string
	first   map[string]int
	n       int64
}

// NewResultSet returns an empty set.
func NewResultSet() *ResultSet {
	return &ResultSet{
		counts:  make(map[string]int),
		display: make(map[string]string),
		first:   make(map[string]int),
	}
}

// RestoreResultSet rebuilds a set from a durable snapshot; nil restores
// an empty set.
func RestoreResultSet(p *jobs.EnumProgress) *ResultSet {
	s := NewResultSet()
	if p == nil {
		return s
	}
	s.n = p.Contributions
	for k, v := range p.Counts {
		s.counts[k] = v
	}
	for k, v := range p.Display {
		s.display[k] = v
	}
	for k, v := range p.FirstBatch {
		s.first[k] = v
	}
	return s
}

// Observe folds one contribution made during the given batch into the
// set and reports its canonical key and whether it was a new discovery.
func (s *ResultSet) Observe(text string, batch int) (key string, isNew bool) {
	key = scheduler.ItemKey(text)
	s.n++
	s.counts[key]++
	if s.counts[key] > 1 {
		return key, false
	}
	s.display[key] = scheduler.NormalizeText(text)
	s.first[key] = batch
	return key, true
}

// Distinct is the number of distinct members discovered so far.
func (s *ResultSet) Distinct() int { return len(s.counts) }

// Contributions is the total contribution count, repeats included.
func (s *ResultSet) Contributions() int64 { return s.n }

// FreqOfFreq builds the frequency-of-frequencies histogram: how many
// distinct members were contributed exactly k times.
func (s *ResultSet) FreqOfFreq() map[int]int {
	freq := make(map[int]int)
	for _, c := range s.counts {
		freq[c]++
	}
	return freq
}

// Estimate runs Chao92 over the current histogram.
func (s *ResultSet) Estimate() stats.SpeciesEstimate {
	return stats.Chao92(s.FreqOfFreq())
}

// UnseenProbability is the Good-Turing chance that the next
// contribution is a new member — the per-contribution discovery rate
// marginal-value admission scales by the batch size.
func (s *ResultSet) UnseenProbability() float64 {
	return stats.GoodTuringUnseen(s.FreqOfFreq())
}

// Items lists the discovered members sorted by display text.
func (s *ResultSet) Items() []Item {
	out := make([]Item, 0, len(s.counts))
	for k, c := range s.counts {
		out = append(out, Item{Key: k, Text: s.display[k], Count: c, Batch: s.first[k]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Text < out[j].Text })
	return out
}

// Progress snapshots the set for the durable stream mark.
func (s *ResultSet) Progress() *jobs.EnumProgress {
	p := &jobs.EnumProgress{
		Counts:        make(map[string]int, len(s.counts)),
		Display:       make(map[string]string, len(s.display)),
		FirstBatch:    make(map[string]int, len(s.first)),
		Contributions: s.n,
	}
	for k, v := range s.counts {
		p.Counts[k] = v
	}
	for k, v := range s.display {
		p.Display[k] = v
	}
	for k, v := range s.first {
		p.FirstBatch[k] = v
	}
	return p
}
