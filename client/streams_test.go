package client

import (
	"context"
	"errors"
	"testing"
	"time"

	"cdas/api"
)

func streamSubmission(name string) api.StreamSubmission {
	return api.StreamSubmission{
		Name:             name,
		Keywords:         []string{"Thor"},
		RequiredAccuracy: 0.85,
		Domain:           []string{"positive", "neutral", "negative"},
		Start:            "2011-10-01T00:00:00Z",
		Window:           "1m",
		Items:            24,
		Rate:             1,
		SourceSeed:       5,
	}
}

// publishWindow pushes a fabricated window close through the server's
// standing-query sink, exactly as the standing runner would.
func (b *testBackend) publishWindow(name string, window int, done bool) {
	st := api.StreamStatus{
		Name:          name,
		Keywords:      []string{"Thor"},
		Domain:        []string{"positive", "neutral", "negative"},
		State:         api.JobRunning,
		WindowsClosed: window + 1,
		Seen:          int64(10 * (window + 1)),
		Matched:       int64(10 * (window + 1)),
		Spent:         0.5 * float64(window+1),
		Progress:      float64(window+1) / 3,
		Done:          done,
	}
	var win *api.StreamWindow
	if !done {
		win = &api.StreamWindow{
			Window:      window,
			Items:       10,
			Answered:    10,
			BatchSize:   5,
			Percentages: map[string]float64{"positive": 1},
			Cost:        0.5,
		}
	}
	b.srv.PublishStreamWindow(st, win)
}

func TestClientStreamLifecycle(t *testing.T) {
	b, c := newTestBackend(t)
	ctx := context.Background()

	st, err := c.SubmitStream(ctx, streamSubmission("s1"))
	if err != nil {
		t.Fatalf("SubmitStream: %v", err)
	}
	if st.Name != "s1" || st.Done {
		t.Errorf("submitted stream = %+v", st)
	}

	if st, err = c.Stream(ctx, "s1"); err != nil || st.Name != "s1" {
		t.Errorf("Stream = %+v, %v", st, err)
	}
	streams, err := c.ListStreams(ctx)
	if err != nil || len(streams) != 1 || streams[0].Name != "s1" {
		t.Errorf("ListStreams = %+v, %v", streams, err)
	}

	// Unknown streams surface the structured 404.
	var apiErr *api.Error
	if _, err := c.Stream(ctx, "ghost"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("Stream(ghost) err = %v, want api 404", err)
	}

	// A watcher sees published windows and stops at done.
	events, err := c.WatchStream(ctx, "s1")
	if err != nil {
		t.Fatalf("WatchStream: %v", err)
	}
	b.publishWindow("s1", 0, false)
	b.publishWindow("s1", 1, false)
	b.publishWindow("s1", 2, true)
	var kinds []string
	var last StreamEvent
	deadline := time.After(15 * time.Second)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				goto drained
			}
			if ev.Err != nil {
				t.Fatalf("watch error: %v", ev.Err)
			}
			kinds = append(kinds, ev.Type)
			last = ev
		case <-deadline:
			t.Fatal("watch never finished")
		}
	}
drained:
	if len(kinds) == 0 || kinds[len(kinds)-1] != api.EventDone {
		t.Fatalf("watch kinds = %v, want trailing done", kinds)
	}
	sawWindow := false
	for _, k := range kinds {
		sawWindow = sawWindow || k == api.EventWindow
	}
	if !sawWindow {
		t.Errorf("watch kinds = %v, want at least one window event", kinds)
	}
	if last.Event.State.WindowsClosed != 3 || !last.Event.State.Done {
		t.Errorf("terminal event state = %+v", last.Event.State)
	}

	// Resuming past the terminal revision still yields the done replay
	// (terminal states always replay so a watcher can't hang).
	events, err = c.WatchStream(ctx, "s1", WatchOptions{LastEventID: last.ID})
	if err != nil {
		t.Fatalf("WatchStream resume: %v", err)
	}
	var resumed []StreamEvent
	for ev := range events {
		if ev.Err != nil {
			t.Fatalf("resume watch error: %v", ev.Err)
		}
		resumed = append(resumed, ev)
	}
	if len(resumed) != 1 || resumed[0].Type != api.EventDone {
		t.Errorf("resumed deliveries = %+v, want one done replay", resumed)
	}

	// Cancelling a second stream returns its record.
	if _, err := c.SubmitStream(ctx, streamSubmission("s2")); err != nil {
		t.Fatal(err)
	}
	st, err = c.CancelStream(ctx, "s2")
	if err != nil {
		t.Fatalf("CancelStream: %v", err)
	}
	if st.State != api.JobCancelled && st.State != api.JobRunning && st.State != api.JobPending {
		t.Errorf("cancelled stream state = %q", st.State)
	}
	if _, err := c.CancelStream(ctx, "ghost"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("CancelStream(ghost) err = %v, want api 404", err)
	}
}

func TestWatchStreamCancel(t *testing.T) {
	b, c := newTestBackend(t)
	if _, err := c.SubmitStream(context.Background(), streamSubmission("s1")); err != nil {
		t.Fatal(err)
	}
	b.publishWindow("s1", 0, false)
	ctx, cancel := context.WithCancel(context.Background())
	events, err := c.WatchStream(ctx, "s1")
	if err != nil {
		t.Fatal(err)
	}
	// Consume the replay, then cancel: the channel must close without a
	// trailing error delivery.
	<-events
	cancel()
	deadline := time.After(15 * time.Second)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return
			}
			if ev.Err != nil {
				t.Fatalf("cancelled watch delivered error: %v", ev.Err)
			}
		case <-deadline:
			t.Fatal("channel never closed after cancel")
		}
	}
}

func TestStreamPathEscaping(t *testing.T) {
	if got := streamPath("a b/c"); got != "/v1/streams/a%20b%2Fc" {
		t.Errorf("streamPath = %q", got)
	}
}
