package verification

import (
	"testing"
	"testing/quick"
)

func votesFor(answers ...string) []Vote {
	vs := make([]Vote, len(answers))
	for i, a := range answers {
		vs[i] = Vote{Accuracy: 0.7, Answer: a}
	}
	return vs
}

func TestHalfVotingAccepts(t *testing.T) {
	a, ok := HalfVoting(votesFor("x", "x", "y", "x", "z"))
	if !ok || a != "x" {
		t.Errorf("got %q/%v, want x/true", a, ok)
	}
}

func TestHalfVotingNoAnswer(t *testing.T) {
	// 2-2-1 split over 5 voters: nobody reaches ceil(5/2)=3.
	if a, ok := HalfVoting(votesFor("x", "x", "y", "y", "z")); ok {
		t.Errorf("expected no answer, got %q", a)
	}
}

func TestHalfVotingExactBoundary(t *testing.T) {
	// ceil(4/2)=2: two of four suffice ("no less than n/2" in the paper).
	a, ok := HalfVoting(votesFor("x", "x", "y", "z"))
	if !ok || a != "x" {
		t.Errorf("got %q/%v, want x/true at the n/2 boundary", a, ok)
	}
}

func TestMajorityVotingAccepts(t *testing.T) {
	// 2-1-1: plurality suffices for majority-voting even below half.
	a, ok := MajorityVoting(votesFor("y", "x", "y", "z"))
	if !ok || a != "y" {
		t.Errorf("got %q/%v, want y/true", a, ok)
	}
}

func TestMajorityVotingTie(t *testing.T) {
	if a, ok := MajorityVoting(votesFor("x", "y", "x", "y")); ok {
		t.Errorf("expected tie/no-answer, got %q", a)
	}
}

func TestVotingEmpty(t *testing.T) {
	if _, ok := HalfVoting(nil); ok {
		t.Error("HalfVoting(nil) should not produce an answer")
	}
	if _, ok := MajorityVoting(nil); ok {
		t.Error("MajorityVoting(nil) should not produce an answer")
	}
}

func TestHalfImpliesMajority(t *testing.T) {
	// Property: whenever Half-Voting accepts, Majority-Voting accepts the
	// same answer (half of the votes is always a strict plurality unless
	// exactly tied at n/2 with one rival — only possible when the winner
	// has > n/2 ... n even edge: two answers at exactly n/2 each tie).
	f := func(picks []uint8) bool {
		if len(picks) == 0 {
			return true
		}
		domain := []string{"a", "b", "c"}
		votes := make([]Vote, len(picks))
		for i, p := range picks {
			votes[i] = Vote{Accuracy: 0.6, Answer: domain[int(p)%3]}
		}
		half, okH := HalfVoting(votes)
		if !okH {
			return true
		}
		counts := VoteCounts(votes)
		// Exact two-way tie at n/2 (even n): majority declines, half may
		// pick either — skip.
		ties := 0
		for _, c := range counts {
			if c == counts[half] {
				ties++
			}
		}
		maj, okM := MajorityVoting(votes)
		if ties > 1 {
			return !okM
		}
		return okM && maj == half
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVoteCounts(t *testing.T) {
	counts := VoteCounts(votesFor("x", "y", "x"))
	if counts["x"] != 2 || counts["y"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestPaperVotingExample(t *testing.T) {
	// Section 1's motivating 30/30/40 split: half-voting fails, majority
	// picks the 40% answer.
	votes := votesFor(
		"pos", "pos", "pos",
		"neg", "neg", "neg",
		"neu", "neu", "neu", "neu",
	)
	if _, ok := HalfVoting(votes); ok {
		t.Error("half-voting should fail on a 30/30/40 split")
	}
	if a, ok := MajorityVoting(votes); !ok || a != "neu" {
		t.Errorf("majority = %q/%v, want neu/true", a, ok)
	}
}
