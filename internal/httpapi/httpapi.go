// Package httpapi serves CDAS results over HTTP in the style of the
// paper's Figure 4: a query's running percentages, reason keywords and
// HIT progress, refreshed as the crowdsourcing engine accepts answers.
//
// The public surface is the versioned /v1 API (v1.go): resource-oriented
// routes speaking the typed wire contract of the top-level api package,
// structured api.Error envelopes on every error path, pagination on job
// lists, and an SSE stream pushing each QueryState revision as answers
// arrive (sse.go). The pre-v1 routes remain mounted as thin deprecated
// aliases (a Deprecation header points at the successor) so existing
// consumers keep working.
package httpapi

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"sync"

	"cdas/api"
	"cdas/internal/engine"
	"cdas/internal/exec"
	"cdas/internal/metrics"
)

// QueryState is the live presentation of one registered query. It is
// the api.QueryState wire type: the dashboard, the SSE stream and the
// v1 routes all serve exactly what the contract declares.
type QueryState = api.QueryState

// Server holds query states and exposes them over HTTP. It is safe for
// concurrent use. Attach a job service with SetJobs to enable the write
// API (POST/GET/DELETE jobs) and a counter registry with SetCounters
// for the metrics routes.
type Server struct {
	mu         sync.RWMutex
	queries    map[string]QueryState
	revs       map[string]int64
	subs       map[string]map[*subscriber]struct{}
	streams    map[string]api.StreamStatus
	streamRevs map[string]int64
	streamSubs map[string]map[*subscriber]struct{}
	enums      map[string]api.EnumStatus
	enumRevs   map[string]int64
	enumSubs   map[string]map[*subscriber]struct{}
	jobsCtl    JobController
	counters   *metrics.Registry
	sched      SchedulerReporter
	logf       func(format string, args ...any)
}

// NewServer returns an empty Server.
func NewServer() *Server {
	return &Server{
		queries:    make(map[string]QueryState),
		revs:       make(map[string]int64),
		subs:       make(map[string]map[*subscriber]struct{}),
		streams:    make(map[string]api.StreamStatus),
		streamRevs: make(map[string]int64),
		streamSubs: make(map[string]map[*subscriber]struct{}),
		enums:      make(map[string]api.EnumStatus),
		enumRevs:   make(map[string]int64),
		enumSubs:   make(map[string]map[*subscriber]struct{}),
	}
}

// SetLogf attaches an access/error logger (log.Printf-shaped). A Server
// without one stays silent.
func (s *Server) SetLogf(logf func(format string, args ...any)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logf = logf
}

func (s *Server) logfn() func(format string, args ...any) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.logf
}

// Update publishes (or replaces) a query's state and fans the new
// revision out to every SSE subscriber of that query.
func (s *Server) Update(st QueryState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.updateLocked(st)
}

func (s *Server) updateLocked(st QueryState) {
	s.queries[st.Name] = st
	s.revs[st.Name]++
	ev := feedEvent{rev: s.revs[st.Name], kind: queryKind(st), data: st}
	for sub := range s.subs[st.Name] {
		sub.push(ev)
	}
}

// UpdateFromSummary is a convenience wrapper building a QueryState from
// the executor's summary.
func (s *Server) UpdateFromSummary(name string, sum exec.Summary, progress float64, done bool) {
	s.Update(QueryState{
		Name:        name,
		Domain:      sum.Domain,
		Percentages: sum.Percentages,
		Reasons:     sum.Reasons,
		Items:       sum.Items,
		Progress:    progress,
		Done:        done,
		Confidence:  sum.Confidence,
		Quality:     sum.Quality,
	})
}

// Follow consumes one query's concurrent-pipeline stream, republishing
// the running summary after every finished HIT and marking the query done
// when the stream closes — Figure 4's live view fed directly by
// Engine.Stream. It blocks until the channel closes (run it in its own
// goroutine for a live page), always drains the channel, and returns the
// finished batches ordered by batch index together with the first batch
// error encountered.
//
// texts maps item IDs to their original text for reason extraction;
// totalItems, when positive, drives the progress fraction; exclude lists
// words kept out of the reason columns.
func (s *Server) Follow(name string, domain []string, texts map[string]string, totalItems int, ch <-chan engine.StreamResult, exclude ...string) ([]engine.BatchResult, error) {
	acc := exec.NewAccumulator(domain, exclude...)
	for id, text := range texts {
		acc.AddText(id, text)
	}
	byIndex := make(map[int]engine.BatchResult)
	var firstErr error
	for sr := range ch {
		if sr.Err != nil {
			if firstErr == nil {
				firstErr = sr.Err
			}
			continue
		}
		byIndex[sr.Index] = sr.Batch
		acc.Observe(exec.OutcomesFromResults(sr.Batch.Results)...)
		s.UpdateFromSummary(name, acc.Summary(), acc.Progress(totalItems), false)
	}
	// The stream is over either way, but a failed or cancelled query must
	// not present as 100% complete: keep the real progress and surface
	// the error on the state.
	sum := acc.Summary()
	final := QueryState{
		Name:        name,
		Domain:      sum.Domain,
		Percentages: sum.Percentages,
		Reasons:     sum.Reasons,
		Items:       sum.Items,
		Progress:    followProgress(acc.Items(), totalItems, firstErr == nil),
		Done:        true,
		Confidence:  sum.Confidence,
		Quality:     sum.Quality,
	}
	if firstErr != nil {
		final.Error = firstErr.Error()
	}
	s.Update(final)
	indices := make([]int, 0, len(byIndex))
	for i := range byIndex {
		indices = append(indices, i)
	}
	sort.Ints(indices)
	batches := make([]engine.BatchResult, 0, len(byIndex))
	for _, i := range indices {
		batches = append(batches, byIndex[i])
	}
	return batches, firstErr
}

// Get returns a query's state.
func (s *Server) Get(name string) (QueryState, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.queries[name]
	return st, ok
}

// Names lists registered queries, sorted.
func (s *Server) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.queries))
	for n := range s.queries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Handler returns the HTTP handler. The v1 surface (see v1.go):
//
//	POST   /v1/jobs                        submit a job (kind batch | continuous | enumeration)
//	GET    /v1/jobs                        paginated, filterable (?kind= included) job list
//	GET    /v1/jobs/{name}                 one job's record and live results
//	DELETE /v1/jobs/{name}                 cancel a pending, parked or running job
//	POST   /v1/jobs/{name}:unpark          resume a budget-parked job
//	GET    /v1/queries                     all live query states
//	GET    /v1/queries/{name}              one query's state
//	GET    /v1/queries/{name}/events       SSE stream of QueryState revisions
//	GET    /v1/enumerations                paginated enumeration list
//	GET    /v1/enumerations/{name}         one enumeration's result set and estimate
//	GET    /v1/enumerations/{name}/events  SSE stream of completed batches
//	GET    /v1/scheduler                   cross-query scheduler state
//	GET    /v1/metrics                     operational counters
//	GET    /v1/healthz                     liveness probe
//
// plus the deprecated /v1/streams group (POST/GET/DELETE /v1/streams...,
// historical bodies with a Deprecation header; submission's successor is
// the kind-discriminated POST /v1/jobs), GET / (HTML overview) and the
// deprecated pre-v1 aliases (/api/queries, /api/query, /api/metrics,
// /api/scheduler, /jobs...), which serve their historical shapes with a
// Deprecation header.
// Requests flow through the middleware chain: request ID, panic
// recovery into a 500 envelope, and optional access logging (SetLogf).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.mountV1(mux)
	mux.HandleFunc("GET /api/queries", deprecated("/v1/queries", s.handleList))
	mux.HandleFunc("GET /api/query", deprecated("/v1/queries/{name}", s.handleQuery))
	mux.HandleFunc("GET /api/metrics", deprecated("/v1/metrics", s.handleMetrics))
	mux.HandleFunc("GET /api/scheduler", deprecated("/v1/scheduler", s.handleScheduler))
	mux.HandleFunc("POST /jobs", deprecated("/v1/jobs", s.handleSubmitJob))
	mux.HandleFunc("GET /jobs", deprecated("/v1/jobs", s.handleListJobs))
	mux.HandleFunc("GET /jobs/{name}", deprecated("/v1/jobs/{name}", s.handleGetJob))
	mux.HandleFunc("DELETE /jobs/{name}", deprecated("/v1/jobs/{name}", s.handleCancelJob))
	mux.HandleFunc("POST /jobs/{name}/unpark", deprecated("/v1/jobs/{name}:unpark", s.handleUnparkJob))
	mux.HandleFunc("GET /{$}", s.handleIndex)
	return s.middleware(mux)
}

// deprecated marks a legacy route: the response carries a Deprecation
// header (RFC 9745) and a successor-version Link so clients can find
// the v1 replacement, while the body keeps its historical shape.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Names())
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	st, ok := s.Get(name)
	if !ok {
		writeError(w, api.NotFound("no such query %q", name))
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	states := make([]QueryState, 0, len(s.queries))
	for _, n := range s.Names() {
		states = append(states, s.queries[n])
	}
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTemplate.Execute(w, states); err != nil {
		if logf := s.logfn(); logf != nil {
			logf("httpapi: rendering index: %v", err)
		}
	}
}

// followProgress is the fraction Follow reports: observed items over the
// expectation, 1 for a complete healthy stream with no expectation set.
func followProgress(items, totalItems int, complete bool) float64 {
	if totalItems > 0 {
		return min(float64(items)/float64(totalItems), 1)
	}
	if complete {
		return 1
	}
	return 0
}

// writeJSON serves v with status 200.
func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus marshals v to a buffer before touching the response:
// an encoding failure yields a clean 500 envelope instead of a partial
// 200 body followed by an unsendable error.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, api.Internal("encoding response: %v", err))
		return
	}
	b = append(b, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
}

// writeError serves a structured api.Error envelope.
func writeError(w http.ResponseWriter, e *api.Error) {
	b, err := json.MarshalIndent(api.ErrorResponse{Error: e}, "", "  ")
	if err != nil {
		// An Error is all strings and ints; this cannot fail. Keep a
		// plain-text fallback rather than recursing.
		http.Error(w, e.Message, e.Status)
		return
	}
	b = append(b, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.Status)
	w.Write(b)
}

var indexTemplate = template.Must(template.New("index").Funcs(template.FuncMap{
	"pct": func(v float64) string { return fmt.Sprintf("%.1f%%", v*100) },
}).Parse(`<!DOCTYPE html>
<html>
<head><title>CDAS — live results</title></head>
<body>
<h1>CDAS — live query results</h1>
{{- if not .}}<p>No queries registered.</p>{{end}}
{{- range .}}
<section>
  <h2>{{.Name}} {{if .Error}}(failed at {{pct .Progress}}: {{.Error}}){{else if .Done}}(done){{else}}({{pct .Progress}} of answers in){{end}}</h2>
  <table border="1" cellpadding="4">
    <tr><th>answer</th><th>percentage</th><th>reasons</th></tr>
    {{- $st := .}}
    {{- range .Domain}}
    <tr>
      <td>{{.}}</td>
      <td>{{pct (index $st.Percentages .)}}</td>
      <td>{{range index $st.Reasons .}}{{.}} {{end}}</td>
    </tr>
    {{- end}}
  </table>
  <p>{{.Items}} items processed.</p>
</section>
{{- end}}
</body>
</html>
`))
