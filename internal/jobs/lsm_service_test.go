package jobs

// Tests for the EngineLSM service backend: round-trip recovery, the
// service-level crash-equivalence harness (random lifecycle op
// sequences against an in-memory reference model with a crash injected
// at every storage failpoint), and property tests pinning the
// in-memory and persistent secondary indexes to the primary records.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"cdas/internal/jobstore"
)

func tenantJob(name, tenant string, priority int) Job {
	j := testJob(name)
	j.Tenant = tenant
	j.Priority = priority
	return j
}

func TestOpenServiceUnknownEngine(t *testing.T) {
	_, err := OpenService(ServiceConfig{Dir: t.TempDir(), Engine: "btree"})
	if err == nil || !strings.Contains(err.Error(), "unknown storage engine") {
		t.Fatalf("err = %v, want unknown storage engine", err)
	}
}

// TestServiceCloseIdempotent pins the Close contract for both engines:
// Close twice is fine, Durable flips to false, reads keep working, and
// every post-Close mutation fails with ErrServiceClosed (after rolling
// back, so memory never acknowledges more than disk).
func TestServiceCloseIdempotent(t *testing.T) {
	for _, engine := range []string{EngineWAL, EngineLSM} {
		t.Run(engine, func(t *testing.T) {
			s, err := OpenService(ServiceConfig{Dir: t.TempDir(), Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Submit(testJob("keep")); err != nil {
				t.Fatal(err)
			}
			if !s.Durable() {
				t.Fatal("Durable() = false before Close")
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
			if s.Durable() {
				t.Fatal("Durable() = true after Close")
			}
			if _, err := s.Submit(testJob("late")); !errors.Is(err, ErrServiceClosed) {
				t.Fatalf("Submit after Close: %v, want ErrServiceClosed", err)
			}
			if err := s.ChargeBudget("keep", 1); !errors.Is(err, ErrServiceClosed) {
				t.Fatalf("ChargeBudget after Close: %v, want ErrServiceClosed", err)
			}
			if err := s.Cancel("keep"); !errors.Is(err, ErrServiceClosed) {
				t.Fatalf("Cancel after Close: %v, want ErrServiceClosed", err)
			}
			// The in-memory view stays readable, and the rolled-back
			// submission is gone from it.
			if _, ok := s.Status("keep"); !ok {
				t.Fatal("Status(keep) lost after Close")
			}
			if _, ok := s.Status("late"); ok {
				t.Fatal("rolled-back post-Close submit still visible")
			}
		})
	}
}

// TestOpenServiceEngineMismatch: booting one engine over the other
// engine's store must fail loudly instead of coming up empty.
func TestOpenServiceEngineMismatch(t *testing.T) {
	walDir := t.TempDir()
	s, err := OpenService(ServiceConfig{Dir: walDir, Engine: EngineWAL})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(testJob("a")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := OpenService(ServiceConfig{Dir: walDir, Engine: EngineLSM}); err == nil || !strings.Contains(err.Error(), "cdas-storectl migrate") {
		t.Fatalf("lsm over wal store: err = %v, want migration hint", err)
	}

	lsmDir := t.TempDir()
	s, err = OpenService(ServiceConfig{Dir: lsmDir, Engine: EngineLSM})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(testJob("a")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := OpenService(ServiceConfig{Dir: lsmDir, Engine: EngineWAL}); err == nil || !strings.Contains(err.Error(), "store-engine=lsm") {
		t.Fatalf("wal over lsm store: err = %v, want engine hint", err)
	}
}

func TestLSMServiceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenService(ServiceConfig{Dir: dir, Engine: EngineLSM, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Durable() {
		t.Fatal("LSM service not durable")
	}
	for i := 0; i < 6; i++ {
		if _, err := s.Submit(tenantJob(fmt.Sprintf("job-%d", i), []string{"", "acme", "globex"}[i%3], i%2)); err != nil {
			t.Fatal(err)
		}
	}
	// job-0 runs to completion; job-1 is left running (crash victim);
	// job-2 is cancelled; budget gets charged.
	for _, want := range []string{"job-0", "job-1"} {
		st, ok := s.Claim()
		if !ok || st.Job.Name != want {
			t.Fatalf("Claim = %v/%v, want %s (FIFO)", st.Job.Name, ok, want)
		}
	}
	if err := s.Complete("job-0", 1.5); err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel("job-2"); err != nil {
		t.Fatal(err)
	}
	if err := s.ChargeBudget("job-0", 1.5); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenService(ServiceConfig{Dir: dir, Engine: EngineLSM})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Resumed(); len(got) != 1 || got[0] != "job-1" {
		t.Fatalf("Resumed = %v, want [job-1]", got)
	}
	checks := map[string]State{
		"job-0": StateDone, "job-1": StatePending, "job-2": StateCancelled,
		"job-3": StatePending, "job-4": StatePending, "job-5": StatePending,
	}
	for name, want := range checks {
		st, ok := r.Status(name)
		if !ok || st.State != want {
			t.Fatalf("%s = %v/%v, want %s", name, st.State, ok, want)
		}
	}
	st, _ := r.Status("job-0")
	if st.Cost != 1.5 || st.Job.Tenant != "" {
		t.Fatalf("job-0 record = %+v, want cost 1.5", st)
	}
	if b := r.Budget(); b.GlobalSpent != 1.5 || b.Jobs["job-0"] != 1.5 {
		t.Fatalf("budget = %+v, want 1.5 global and for job-0", b)
	}
	// FIFO is preserved across recovery: job-1 (oldest pending seq)
	// claims first.
	if st, ok := r.Claim(); !ok || st.Job.Name != "job-1" {
		t.Fatalf("post-recovery Claim = %v/%v, want job-1", st.Job.Name, ok)
	}
}

// svcOp is one generated service-level operation.
type svcOp struct {
	kind   string
	name   string
	tenant string
	prio   int
	amount float64
}

// genSvcOps builds a deterministic lifecycle op sequence. Invalid ops
// (completing a job that isn't running, etc.) are allowed: they fail
// identically in the real service and the reference model, so
// determinism — not validity — is what matters.
func genSvcOps(seed int64, n int) []svcOp {
	rng := rand.New(rand.NewSource(seed))
	tenants := []string{"", "acme", "globex"}
	var out []svcOp
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("j%d", rng.Intn(8))
		switch r := rng.Intn(100); {
		case r < 25:
			out = append(out, svcOp{kind: "submit", name: name, tenant: tenants[rng.Intn(3)], prio: rng.Intn(3)})
		case r < 45:
			out = append(out, svcOp{kind: "claim"})
		case r < 57:
			out = append(out, svcOp{kind: "complete", name: name, amount: float64(rng.Intn(5))})
		case r < 65:
			out = append(out, svcOp{kind: "fail", name: name})
		case r < 70:
			out = append(out, svcOp{kind: "cancel", name: name})
		case r < 78:
			out = append(out, svcOp{kind: "park", name: name})
		case r < 85:
			out = append(out, svcOp{kind: "unpark", name: name})
		case r < 95:
			out = append(out, svcOp{kind: "charge", name: name, amount: 1 + float64(rng.Intn(3))})
		default:
			out = append(out, svcOp{kind: "progress", name: name, amount: float64(rng.Intn(100)) / 100})
		}
	}
	return out
}

// applySvcOp plays one op; errors are expected for invalid transitions
// and are identical on both sides of the equivalence check.
func applySvcOp(s *Service, op svcOp) {
	switch op.kind {
	case "submit":
		s.Submit(tenantJob(op.name, op.tenant, op.prio))
	case "claim":
		s.Claim()
	case "complete":
		s.Complete(op.name, op.amount)
	case "fail":
		s.Fail(op.name, errors.New("induced failure"), op.amount)
	case "cancel":
		s.Cancel(op.name)
	case "park":
		s.Park(op.name)
	case "unpark":
		s.Unpark(op.name)
	case "charge":
		s.ChargeBudget(op.name, op.amount)
	case "progress":
		s.Progress(op.name, op.amount, op.amount)
	}
}

// normStatus is the comparable projection of a Status: everything the
// API exposes, excluding the unexported bookkeeping (baseCost differs
// legitimately between a restored record and a live one).
type normStatus struct {
	Job      Job
	State    State
	Attempts int
	Progress float64
	Cost     float64
	Error    string
}

// normalize projects a service's state for equivalence comparison,
// folding the requeue-on-recovery rule in: a Running job surviving a
// crash is exactly a Pending job with progress reset.
func normalize(s *Service) map[string]normStatus {
	out := make(map[string]normStatus)
	for _, st := range s.Statuses() {
		n := normStatus{Job: st.Job, State: st.State, Attempts: st.Attempts, Progress: st.Progress, Cost: st.Cost, Error: st.Error}
		if n.State == StateRunning {
			n.State = StatePending
			n.Progress = 0
		}
		out[st.Job.Name] = n
	}
	return out
}

// modelAt replays acked ops on a volatile service and returns its
// normalized state plus budget.
func modelAt(t *testing.T, ops []svcOp) (map[string]normStatus, BudgetState) {
	t.Helper()
	m, err := OpenService(ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		applySvcOp(m, op)
	}
	return normalize(m), m.Budget()
}

// svcCrash is the failpoint hook for the service-level sweep. The
// mutex matters: with online checkpointing the hook is hit from both
// the commit path and the background flush goroutine.
type svcCrash struct {
	mu    sync.Mutex
	n     int
	torn  bool
	hits  int
	fired bool
	point string
}

func (c *svcCrash) fn(point string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++
	if c.hits == c.n {
		c.fired = true
		c.point = point
		if c.torn && (point == jobstore.FailWALWrite || point == jobstore.FailRunWrite) {
			return jobstore.ErrTornWrite
		}
		return jobstore.ErrInjectedCrash
	}
	return nil
}

func (c *svcCrash) totalHits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

func (c *svcCrash) state() (fired bool, point string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired, c.point
}

// TestServiceCrashEquivalence is the headline harness: identical
// lifecycle op sequences run against the LSM-backed service and an
// in-memory reference model, with a simulated crash at every fsync and
// rename the storage engine performs. After each crash the store is
// reopened and its recovered state must equal the model either before
// or after the in-flight op — atomic commit semantics, no third
// option. Budget must never double-charge or lose an acked charge.
func TestServiceCrashEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is not short")
	}
	crashedPoints := map[string]bool{}
	for _, seed := range []int64{41, 42} {
		for _, torn := range []bool{false, true} {
			ops := genSvcOps(seed, 30)

			// Dry run: count failpoint hits with a hook that never fires.
			// Quiesce after every op so the background checkpoint flush's
			// hits land in a deterministic position in the global order —
			// the sweep below replays the same schedule.
			counter := &svcCrash{n: -1}
			dry, err := OpenService(ServiceConfig{Dir: t.TempDir(), Engine: EngineLSM, SnapshotEvery: 3, StoreFail: counter.fn})
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range ops {
				applySvcOp(dry, op)
				dry.Quiesce()
			}
			dry.Close()
			if counter.totalHits() == 0 {
				t.Fatalf("seed %d: no failpoint hits", seed)
			}

			for n := 1; n <= counter.totalHits(); n++ {
				dir := t.TempDir()
				crash := &svcCrash{n: n, torn: torn}
				s, err := OpenService(ServiceConfig{Dir: dir, Engine: EngineLSM, SnapshotEvery: 3, StoreFail: crash.fn})
				if err != nil {
					t.Fatalf("seed %d n %d: open: %v", seed, n, err)
				}
				crashedAt := -1
				for i, op := range ops {
					applySvcOp(s, op)
					s.Quiesce()
					if fired, _ := crash.state(); fired {
						crashedAt = i
						break
					}
				}
				s.Close()
				if crashedAt == -1 {
					continue // sequence finished before hit n (scheduling drift)
				}
				_, crashPoint := crash.state()
				crashedPoints[crashPoint] = true

				r, err := OpenService(ServiceConfig{Dir: dir, Engine: EngineLSM})
				if err != nil {
					t.Fatalf("seed %d n %d (%s): recovery failed: %v", seed, n, crashPoint, err)
				}
				got := normalize(r)
				gotBudget := r.Budget()
				r.Close()

				beforeState, beforeBudget := modelAt(t, ops[:crashedAt])
				afterState, afterBudget := modelAt(t, ops[:crashedAt+1])
				stateOK := reflect.DeepEqual(got, beforeState) || reflect.DeepEqual(got, afterState)
				budgetOK := reflect.DeepEqual(gotBudget, beforeBudget) || reflect.DeepEqual(gotBudget, afterBudget)
				if !stateOK || !budgetOK {
					t.Fatalf("seed %d torn=%v crash at hit %d (%s, op %d %+v):\nrecovered %v budget %v\nbefore    %v budget %v\nafter     %v budget %v",
						seed, torn, n, crashPoint, crashedAt, ops[crashedAt],
						got, gotBudget, beforeState, beforeBudget, afterState, afterBudget)
				}
			}
		}
	}
	for _, p := range jobstore.LSMFailpoints {
		if !crashedPoints[p] {
			t.Errorf("failpoint %s never crashed in the service sweep", p)
		}
	}
}

// TestStatusesPageProperty pins the in-memory indexes to the table:
// for random op interleavings, every (state, tenant, page size)
// combination of StatusesPage must equal the brute-force filter of the
// full sorted listing, page by page.
func TestStatusesPageProperty(t *testing.T) {
	for _, seed := range []int64{5, 6, 7} {
		s, err := OpenService(ServiceConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range genSvcOps(seed, 120) {
			applySvcOp(s, op)
		}
		all := s.Statuses()
		states := []State{"", StatePending, StateRunning, StateParked, StateDone, StateFailed, StateCancelled}
		tenants := []string{"", "acme", "globex", "missing"}
		for _, state := range states {
			for _, tenant := range tenants {
				var want []string
				for _, st := range all {
					if state != "" && st.State != state {
						continue
					}
					if tenant != "" && st.Job.Tenant != tenant {
						continue
					}
					want = append(want, st.Job.Name)
				}
				for _, limit := range []int{1, 2, 100} {
					var got []string
					after := ""
					for {
						page, more := s.StatusesPage(after, limit, state, tenant)
						if len(page) > limit {
							t.Fatalf("page of %d exceeds limit %d", len(page), limit)
						}
						for _, st := range page {
							got = append(got, st.Job.Name)
						}
						if !more {
							break
						}
						after = page[len(page)-1].Job.Name
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d state %q tenant %q limit %d: paged %v, want %v", seed, state, tenant, limit, got, want)
					}
				}
			}
		}
	}
}

// TestLSMSecondaryIndexConsistency drives random lifecycle traffic
// through the LSM engine with aggressive checkpointing (so records
// cross memtable flushes and compactions), then inspects the raw store:
// the (state, priority, tenant) index keyspaces must correspond 1:1
// with the primary records — no dangling entries, no missing ones.
func TestLSMSecondaryIndexConsistency(t *testing.T) {
	for _, seed := range []int64{21, 22} {
		dir := t.TempDir()
		s, err := OpenService(ServiceConfig{Dir: dir, Engine: EngineLSM, SnapshotEvery: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range genSvcOps(seed, 150) {
			applySvcOp(s, op)
		}
		s.Close()

		l, err := jobstore.OpenLSM(jobstore.LSMConfig{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		primary := map[string]walStatus{}
		err = l.Scan(lsmPrimaryPrefix, prefixEnd(lsmPrimaryPrefix), func(k string, v []byte) bool {
			var ws walStatus
			if err := json.Unmarshal(v, &ws); err != nil {
				t.Fatalf("primary record %q: %v", k, err)
			}
			primary[ws.Job.Name] = ws
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(primary) == 0 {
			t.Fatalf("seed %d: no jobs made it to the store", seed)
		}

		stateEntries := map[string]string{} // name → indexed state/seq
		err = l.Scan(lsmStatePrefix, prefixEnd(lsmStatePrefix), func(k string, _ []byte) bool {
			parts := strings.Split(strings.TrimPrefix(k, lsmStatePrefix), "/")
			if len(parts) != 3 {
				t.Fatalf("malformed state index key %q", k)
			}
			if prev, dup := stateEntries[parts[2]]; dup {
				t.Fatalf("job %q has two state index entries: %q and %q", parts[2], prev, parts[0])
			}
			stateEntries[parts[2]] = parts[0] + "/" + parts[1]
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		for name, ws := range primary {
			want := fmt.Sprintf("%s/%016x", ws.State, ws.Seq)
			if stateEntries[name] != want {
				t.Fatalf("seed %d: job %q state index = %q, want %q", seed, name, stateEntries[name], want)
			}
			delete(stateEntries, name)
		}
		if len(stateEntries) != 0 {
			t.Fatalf("seed %d: dangling state index entries: %v", seed, stateEntries)
		}

		checkOnePerJob := func(prefix string, keyFor func(ws walStatus) string) {
			entries := map[string]bool{}
			err := l.Scan(prefix, prefixEnd(prefix), func(k string, _ []byte) bool {
				entries[k] = true
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			for name, ws := range primary {
				want := keyFor(ws)
				if want == "" {
					continue
				}
				if !entries[want] {
					t.Fatalf("seed %d: job %q missing index key %q", seed, name, want)
				}
				delete(entries, want)
			}
			if len(entries) != 0 {
				t.Fatalf("seed %d: dangling %s entries: %v", seed, prefix, entries)
			}
		}
		checkOnePerJob(lsmPrioPrefix, func(ws walStatus) string {
			return lsmPrioKey(ws.Job.Priority, ws.Job.Name)
		})
		checkOnePerJob(lsmTenantPrefix, func(ws walStatus) string {
			if ws.Job.Tenant == "" {
				return ""
			}
			return lsmTenantKey(ws.Job.Tenant, ws.Job.Name)
		})
	}
}
