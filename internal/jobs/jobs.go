// Package jobs implements the CDAS job manager (Section 2.1, Figure 2):
// it accepts analytics job registrations, validates their queries, and
// produces processing plans that partition each job into computer-oriented
// tasks (run by the program executor) and human-oriented tasks (run by the
// crowdsourcing engine).
package jobs

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"cdas/internal/core/aggregate"
	"cdas/internal/textutil"
)

// Query is the analytics query of Definition 1: (S, C, R, t, w).
type Query struct {
	Keywords         []string      // S: filter keywords
	RequiredAccuracy float64       // C: accuracy requirement in (0, 1)
	Domain           []string      // R: the answer domain
	Start            time.Time     // t: query timestamp
	Window           time.Duration // w: time window
}

// Validate reports whether the query is well-formed.
func (q Query) Validate() error {
	if len(q.Keywords) == 0 {
		return errors.New("jobs: query needs at least one keyword")
	}
	if q.RequiredAccuracy <= 0 || q.RequiredAccuracy >= 1 || math.IsNaN(q.RequiredAccuracy) {
		return fmt.Errorf("jobs: required accuracy must be in (0,1), got %v", q.RequiredAccuracy)
	}
	if len(q.Domain) < 2 {
		return fmt.Errorf("jobs: answer domain needs >= 2 answers, got %d", len(q.Domain))
	}
	seen := make(map[string]struct{}, len(q.Domain))
	for _, r := range q.Domain {
		if _, dup := seen[r]; dup {
			return fmt.Errorf("jobs: duplicate domain answer %q", r)
		}
		seen[r] = struct{}{}
	}
	if q.Window <= 0 {
		return fmt.Errorf("jobs: window must be positive, got %v", q.Window)
	}
	return nil
}

// Matches reports whether an item with the given text and timestamp falls
// inside the query's keyword filter and time window — the computer-side
// filter the program executor applies to the stream.
func (q Query) Matches(text string, at time.Time) bool {
	if at.Before(q.Start) || !at.Before(q.Start.Add(q.Window)) {
		return false
	}
	return textutil.ContainsAny(text, q.Keywords)
}

// Kind identifies the application type of a job, selecting its plan
// template.
type Kind string

// Supported job kinds.
const (
	KindTSA        Kind = "tsa"        // Twitter sentiment analytics (Section 2.2)
	KindImageTag   Kind = "imagetag"   // image tagging (Section 5.2)
	KindCustom     Kind = "custom"     // caller supplies the task split
	KindContinuous Kind = "continuous" // standing query over an unbounded stream
)

// StreamSpec configures a KindContinuous job: a standing query whose
// items arrive over time and are verified window by window. For a
// continuous job the base Query is reinterpreted: Query.Start is the
// stream origin and Query.Window the tumbling event-time window width;
// there is no upper time bound — the query stands until its source ends
// or it is cancelled. All fields are durable (they ride the job record
// through the WAL/LSM store) so a restarted server rebuilds the exact
// same stream.
type StreamSpec struct {
	// Lateness is the watermark lag: a window [s, e) closes once an
	// item with event time >= e+Lateness has been seen. Items arriving
	// behind the watermark are dropped (accounted, never buffered).
	Lateness time.Duration `json:"lateness,omitempty"`
	// TargetFill is the batch-fill target the adaptive batcher aims
	// for: batch size ~= observed arrival rate x TargetFill, clamped to
	// [1, engine real slots]. Zero picks a default of half the window.
	TargetFill time.Duration `json:"target_fill,omitempty"`
	// WindowCapacity caps the crowd questions asked per window — the
	// crowd-throughput budget. Items beyond it settle with degraded
	// partial-vote verdicts or are dropped. Zero means engine real
	// slots per window.
	WindowCapacity int `json:"window_capacity,omitempty"`
	// MaxBacklog bounds buffered matched items across open windows;
	// arrivals beyond it are dropped (accounted). Zero picks
	// 4 x WindowCapacity.
	MaxBacklog int `json:"max_backlog,omitempty"`
	// Items is the number of items the built-in deterministic source
	// emits (the demo/loadgen source). Zero lets the runner's source
	// decide.
	Items int `json:"items,omitempty"`
	// Rate is the built-in source's mean event-time arrival rate in
	// items per second (seeded exponential inter-arrival gaps).
	Rate float64 `json:"rate,omitempty"`
	// SourceSeed seeds the built-in source's arrival process.
	SourceSeed uint64 `json:"source_seed,omitempty"`
}

// Validate reports whether the spec is well-formed.
func (sp StreamSpec) Validate() error {
	if sp.Lateness < 0 {
		return fmt.Errorf("jobs: stream lateness must be >= 0, got %v", sp.Lateness)
	}
	if sp.TargetFill < 0 {
		return fmt.Errorf("jobs: stream target fill must be >= 0, got %v", sp.TargetFill)
	}
	if sp.WindowCapacity < 0 {
		return fmt.Errorf("jobs: stream window capacity must be >= 0, got %d", sp.WindowCapacity)
	}
	if sp.MaxBacklog < 0 {
		return fmt.Errorf("jobs: stream max backlog must be >= 0, got %d", sp.MaxBacklog)
	}
	if sp.Items < 0 {
		return fmt.Errorf("jobs: stream items must be >= 0, got %d", sp.Items)
	}
	if sp.Rate < 0 || math.IsNaN(sp.Rate) {
		return fmt.Errorf("jobs: stream rate must be >= 0, got %v", sp.Rate)
	}
	return nil
}

// Job is a registered analytics job.
type Job struct {
	Name  string
	Kind  Kind
	Query Query
	// Tenant scopes the job to the submitting organisation. Empty is
	// the default (single-tenant) scope; list queries can filter by it.
	Tenant string
	// Priority orders budget admission in the cross-query scheduler:
	// when the remaining budget cannot cover every pending job, higher
	// priorities are admitted first. Zero is the default tier.
	Priority int
	// Budget caps the job's total crowd spend (0 = unlimited). A job
	// whose estimated next run would exceed it is parked, not failed.
	Budget float64
	// Aggregator names the answer-aggregation method (aggregate
	// registry) the job's crowd questions are decided with. Empty
	// selects the default, the CDAS probability model.
	Aggregator string
	// Stream configures a KindContinuous job's standing-query
	// parameters; required for that kind, nil for every other.
	Stream *StreamSpec `json:"Stream,omitempty"`
}

// Task is one step of a processing plan.
type Task struct {
	Name        string
	Description string
	Human       bool // true: crowdsourcing engine; false: program executor
}

// Plan is the partitioned processing plan for a job (Figure 2: the job
// manager "partitions the job into two parts, one for the computers and
// one for the human workers").
type Plan struct {
	Job           Job
	ComputerTasks []Task
	HumanTasks    []Task
}

// planFor instantiates the plan template for the job's kind.
func planFor(job Job) (Plan, error) {
	switch job.Kind {
	case KindTSA:
		return Plan{
			Job: job,
			ComputerTasks: []Task{
				{Name: "filter-stream", Description: "retrieve the tweet stream and keep tweets matching the query keywords inside the window"},
				{Name: "buffer", Description: "buffer candidate tweets into HIT-sized batches"},
				{Name: "summarise", Description: "aggregate accepted answers into percentages and reasons"},
			},
			HumanTasks: []Task{
				{Name: "classify-sentiment", Description: "categorise each tweet's opinion over the answer domain", Human: true},
			},
		}, nil
	case KindImageTag:
		return Plan{
			Job: job,
			ComputerTasks: []Task{
				{Name: "collect-candidates", Description: "assemble candidate tag sets (existing tags plus noise)"},
				{Name: "index", Description: "index images by their accepted tags"},
			},
			HumanTasks: []Task{
				{Name: "select-tags", Description: "choose the correct tag for each image", Human: true},
			},
		}, nil
	case KindContinuous:
		return Plan{
			Job: job,
			ComputerTasks: []Task{
				{Name: "ingest-stream", Description: "pull items from the source and filter them against the query keywords"},
				{Name: "window", Description: "assign items to tumbling event-time windows and close windows on the watermark"},
				{Name: "batch-adaptively", Description: "size engine batches from the observed arrival rate, shedding under saturation"},
				{Name: "summarise-windows", Description: "fold each window's verdicts into per-window and running results"},
			},
			HumanTasks: []Task{
				{Name: "classify-items", Description: "categorise each windowed item over the answer domain", Human: true},
			},
		}, nil
	case KindCustom:
		return Plan{Job: job}, nil
	default:
		return Plan{}, fmt.Errorf("jobs: unknown job kind %q", job.Kind)
	}
}

// DefaultMaxAttempts is how many times a job may be claimed before a
// failure becomes terminal, when the Manager doesn't override it.
const DefaultMaxAttempts = 3

// Manager is the job registry and lifecycle state machine (see
// lifecycle.go for the states). It is safe for concurrent use.
type Manager struct {
	mu          sync.RWMutex
	recs        map[string]*Status
	ix          *indexes
	maxAttempts int
	nextSeq     uint64
}

// NewManager returns an empty Manager with DefaultMaxAttempts.
func NewManager() *Manager {
	return &Manager{
		recs:        make(map[string]*Status),
		ix:          newIndexes(),
		maxAttempts: DefaultMaxAttempts,
	}
}

// SetMaxAttempts bounds the retry loop: a job failing on its n-th claim
// with n >= max lands in Failed instead of requeueing. Values < 1 are
// ignored.
func (m *Manager) SetMaxAttempts(max int) {
	if max < 1 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.maxAttempts = max
}

// MaxAttempts reports the retry bound.
func (m *Manager) MaxAttempts() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.maxAttempts
}

// Registration errors.
var (
	ErrDuplicateJob = errors.New("jobs: job already registered")
	ErrUnknownJob   = errors.New("jobs: no such job")
)

// Register validates the job, stores it in state Pending, and returns
// its processing plan.
func (m *Manager) Register(job Job) (Plan, error) {
	if job.Name == "" {
		return Plan{}, errors.New("jobs: job needs a name")
	}
	if job.Budget < 0 || math.IsNaN(job.Budget) {
		return Plan{}, fmt.Errorf("jobs: job budget must be >= 0, got %v", job.Budget)
	}
	if err := aggregate.Validate(job.Aggregator); err != nil {
		return Plan{}, fmt.Errorf("jobs: %w", err)
	}
	if err := job.Query.Validate(); err != nil {
		return Plan{}, err
	}
	if job.Kind == KindContinuous {
		if job.Stream == nil {
			return Plan{}, errors.New("jobs: continuous job needs a stream spec")
		}
		if err := job.Stream.Validate(); err != nil {
			return Plan{}, err
		}
	} else if job.Stream != nil {
		return Plan{}, fmt.Errorf("jobs: stream spec is only valid for %q jobs, got kind %q", KindContinuous, job.Kind)
	}
	plan, err := planFor(job)
	if err != nil {
		return Plan{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.recs[job.Name]; dup {
		return Plan{}, fmt.Errorf("%w: %q", ErrDuplicateJob, job.Name)
	}
	rec := &Status{Job: job, State: StatePending, seq: m.nextSeq}
	m.recs[job.Name] = rec
	m.ix.enter(rec)
	m.nextSeq++
	return plan, nil
}

// Get returns a registered job.
func (m *Manager) Get(name string) (Job, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	rec, ok := m.recs[name]
	if !ok {
		return Job{}, false
	}
	return rec.Job, true
}

// Unregister removes a job and its lifecycle record; it returns
// ErrUnknownJob if absent.
func (m *Manager) Unregister(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownJob, name)
	}
	m.ix.leave(rec)
	delete(m.recs, name)
	return nil
}

// Jobs lists registered jobs sorted by name.
func (m *Manager) Jobs() []Job {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Job, 0, len(m.recs))
	for _, rec := range m.recs {
		out = append(out, rec.Job)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func sortStatuses(out []Status) {
	sort.Slice(out, func(i, j int) bool { return out[i].Job.Name < out[j].Job.Name })
}
