package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cdas/api"
	"cdas/internal/httpapi"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
)

// streamBackend is a real job service + API server whose runner plays
// a scripted standing query: two window closes, then the terminal done
// event — enough for streams watch to render the full ladder. Names
// prefixed "held-" stall after the first window so cancel lands
// mid-run.
func streamBackend(t *testing.T) *httptest.Server {
	t.Helper()
	svc, err := jobs.OpenService(jobs.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	srv := httpapi.NewServer()
	disp, err := jobs.NewDispatcher(svc, func(ctx context.Context, job jobs.Job, report func(float64, float64)) error {
		if job.Kind != jobs.KindContinuous {
			report(1, 0)
			return nil
		}
		status := func(windows int, done bool) api.StreamStatus {
			return api.StreamStatus{
				Name:          job.Name,
				Keywords:      job.Query.Keywords,
				Domain:        job.Query.Domain,
				State:         api.JobRunning,
				WindowsClosed: windows,
				Seen:          int64(12 * windows),
				Matched:       int64(12 * windows),
				Spent:         0.25 * float64(windows),
				Progress:      float64(windows) / 3,
				Done:          done,
			}
		}
		if strings.HasPrefix(job.Name, "slow-") {
			// Leave the submitter time to attach its watcher before the
			// first window closes, so -watch sees live window events
			// instead of a terminal replay.
			time.Sleep(250 * time.Millisecond)
		}
		for w := 0; w < 2; w++ {
			srv.PublishStreamWindow(status(w+1, false), &api.StreamWindow{
				Window:      w,
				Items:       12,
				Answered:    10,
				Degraded:    1,
				Dropped:     1,
				BatchSize:   5,
				Shed:        w == 1,
				Percentages: map[string]float64{job.Query.Domain[0]: 1},
				Cost:        0.25,
			})
			report(float64(w+1)/3, 0.25)
			if w == 0 && strings.HasPrefix(job.Name, "held-") {
				<-ctx.Done()
				return ctx.Err()
			}
		}
		srv.PublishStreamWindow(status(3, true), nil)
		report(1, 0.25)
		return nil
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	disp.Start()
	t.Cleanup(disp.Stop)
	srv.SetJobs(disp)
	srv.SetCounters(metrics.NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestCtlStreams drives the streams command group end to end: submit
// -watch renders every window close plus the terminal line, get/list
// show the record, cancel lands on a held stream.
func TestCtlStreams(t *testing.T) {
	ts := streamBackend(t)

	code, out, errOut := ctl(t, ts.URL, "streams", "submit",
		"-name", "slow-thor", "-keywords", "Thor", "-domain", "pos,neu,neg",
		"-accuracy", "0.85", "-window", "1m", "-items", "24", "-rate", "1",
		"-source-seed", "5", "-start", "2011-10-01T00:00:00Z", "-watch")
	if code != 0 {
		t.Fatalf("streams submit -watch exited %d: %s", code, errOut)
	}
	var st api.StreamStatus
	dec := json.NewDecoder(strings.NewReader(out))
	if err := dec.Decode(&st); err != nil {
		t.Fatalf("submit output not a StreamStatus: %v\n%s", err, out)
	}
	if st.Name != "slow-thor" {
		t.Errorf("submitted stream = %+v", st)
	}
	if !strings.Contains(out, "window rev=") || !strings.Contains(out, "window=1") {
		t.Errorf("watch output missing window lines:\n%s", out)
	}
	if !strings.Contains(out, " shed") {
		t.Errorf("watch output missing the shed marker:\n%s", out)
	}
	if !strings.Contains(out, "done rev=") {
		t.Errorf("watch output missing the terminal done line:\n%s", out)
	}

	// get prints the record as JSON; the bare command lists it.
	code, out, errOut = ctl(t, ts.URL, "streams", "get", "slow-thor")
	if code != 0 || !strings.Contains(out, `"windows_closed": 3`) {
		t.Errorf("streams get exited %d: %s / %s", code, out, errOut)
	}
	code, out, _ = ctl(t, ts.URL, "streams")
	if code != 0 || !strings.Contains(out, "NAME") || !strings.Contains(out, "slow-thor") ||
		!strings.Contains(out, "1 stream(s)") {
		t.Errorf("streams list output:\n%s", out)
	}

	// watch on a finished stream replays straight to done.
	code, out, errOut = ctl(t, ts.URL, "streams", "watch", "slow-thor")
	if code != 0 || !strings.Contains(out, "done rev=") {
		t.Errorf("streams watch exited %d: %s / %s", code, out, errOut)
	}

	// cancel a held stream mid-run.
	if code, _, errOut := ctl(t, ts.URL, "streams", "submit",
		"-name", "held-loki", "-keywords", "Loki"); code != 0 {
		t.Fatalf("submit held-loki exited %d: %s", code, errOut)
	}
	code, out, errOut = ctl(t, ts.URL, "streams", "cancel", "held-loki")
	if code != 0 {
		t.Fatalf("streams cancel exited %d: %s", code, errOut)
	}
	if !strings.Contains(out, `"held-loki"`) {
		t.Errorf("cancel output: %s", out)
	}
}

func TestCtlStreamsErrors(t *testing.T) {
	ts := streamBackend(t)
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"unknown subcommand", []string{"streams", "frobnicate"}},
		{"get without name", []string{"streams", "get"}},
		{"get unknown", []string{"streams", "get", "ghost"}},
		{"cancel unknown", []string{"streams", "cancel", "ghost"}},
		{"watch without name", []string{"streams", "watch"}},
		{"submit without name", []string{"streams", "submit", "-keywords", "x"}},
		{"submit bad flag", []string{"streams", "submit", "-name", "x", "-keywords", "x", "-bogus"}},
		{"submit bad window", []string{"streams", "submit", "-name", "x", "-keywords", "x", "-window", "nope"}},
	} {
		if code, _, errOut := ctl(t, ts.URL, tc.args...); code == 0 {
			t.Errorf("%s: exited 0, want failure (stderr %q)", tc.name, errOut)
		}
	}
}
