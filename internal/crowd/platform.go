package crowd

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"cdas/internal/core/prediction"
	"cdas/internal/randx"
	"cdas/internal/stats"
)

// Config parameterises a simulated worker population and platform.
type Config struct {
	Seed    uint64
	Workers int

	// Honest-worker accuracy is drawn from a Gaussian truncated to
	// [AccuracyLo, AccuracyHi]. The defaults reproduce the broad
	// real-accuracy histogram of Figure 14.
	AccuracyMean, AccuracySD float64
	AccuracyLo, AccuracyHi   float64
	// Approval rates are drawn from Beta(ApprovalAlpha, ApprovalBeta),
	// skewed high to reproduce Figure 14's approval-rate histogram.
	ApprovalAlpha, ApprovalBeta float64
	// MeanDelay is the mean virtual-seconds submit delay of a unit-speed
	// worker; per-worker speeds are drawn in [SpeedLo, SpeedHi].
	MeanDelay, SpeedLo, SpeedHi float64

	// Failure-injection fractions (the rest of the population is Honest).
	SpammerFraction     float64
	AdversarialFraction float64
	ColluderFraction    float64
	ColludeAnswer       string
	// NoShowFraction is the probability that an accepted assignment is
	// never submitted (the worker walks away). No-shows are never
	// delivered nor charged; a HIT published with n assignments may
	// therefore yield fewer.
	NoShowFraction float64

	// Economics is the fee schedule charged per delivered assignment.
	Economics prediction.Economics
}

// DefaultConfig returns the population used across the experiment suite:
// 500 workers whose accuracies match the paper's observed spread, with
// AMT-like skewed-high approval rates and the paper's fee schedule.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:          seed,
		Workers:       500,
		AccuracyMean:  0.75,
		AccuracySD:    0.13,
		AccuracyLo:    0.28,
		AccuracyHi:    0.98,
		ApprovalAlpha: 18,
		ApprovalBeta:  1.2,
		MeanDelay:     60, // one minute of virtual time per answer on average
		SpeedLo:       0.5,
		SpeedHi:       2.0,
		Economics:     prediction.DefaultEconomics,
	}
}

// Validate checks the configuration for structural errors.
func (c Config) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("crowd: population must be positive, got %d", c.Workers)
	}
	if c.AccuracyLo >= c.AccuracyHi {
		return fmt.Errorf("crowd: accuracy bounds inverted [%v, %v]", c.AccuracyLo, c.AccuracyHi)
	}
	if c.ApprovalAlpha <= 0 || c.ApprovalBeta <= 0 {
		return fmt.Errorf("crowd: approval Beta parameters must be positive")
	}
	if c.MeanDelay <= 0 {
		return fmt.Errorf("crowd: mean delay must be positive, got %v", c.MeanDelay)
	}
	if c.SpeedLo <= 0 || c.SpeedHi < c.SpeedLo {
		return fmt.Errorf("crowd: speed range invalid [%v, %v]", c.SpeedLo, c.SpeedHi)
	}
	frac := c.SpammerFraction + c.AdversarialFraction + c.ColluderFraction
	if c.SpammerFraction < 0 || c.AdversarialFraction < 0 || c.ColluderFraction < 0 || frac > 1 {
		return fmt.Errorf("crowd: behaviour fractions invalid (sum %v)", frac)
	}
	if c.NoShowFraction < 0 || c.NoShowFraction >= 1 {
		return fmt.Errorf("crowd: no-show fraction must be in [0, 1), got %v", c.NoShowFraction)
	}
	return c.Economics.Validate()
}

// Platform is the simulated crowdsourcing marketplace. It is safe for
// concurrent use: the engine's pipeline publishes and drains several HITs
// at once. Its shared state — the cumulative spend and the HIT sequence
// number — is kept in atomics rather than behind a mutex: charge runs
// once per delivered assignment across every concurrent run, and a
// platform-wide lock there serialises all in-flight HITs of all engines
// sharing the platform. Fees are constant per platform (the configured
// per-assignment rate), so the CAS-accumulated float total is the same
// regardless of arrival order.
type Platform struct {
	cfg     Config
	rng     *randx.Source
	workers []*Worker

	spentBits atomic.Uint64 // float64 bits of the cumulative spend
	hitSeq    atomic.Int64
}

// NewPlatform builds the worker population and returns the platform.
func NewPlatform(cfg Config) (*Platform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := randx.New(cfg.Seed)
	popRNG := rng.Split("population")
	workers := make([]*Worker, cfg.Workers)
	nSpam := int(cfg.SpammerFraction * float64(cfg.Workers))
	nAdv := int(cfg.AdversarialFraction * float64(cfg.Workers))
	nCol := int(cfg.ColluderFraction * float64(cfg.Workers))
	for i := range workers {
		w := &Worker{
			ID:           fmt.Sprintf("w%04d", i),
			Accuracy:     popRNG.TruncNormal(cfg.AccuracyMean, cfg.AccuracySD, cfg.AccuracyLo, cfg.AccuracyHi),
			ApprovalRate: popRNG.Beta(cfg.ApprovalAlpha, cfg.ApprovalBeta),
			Speed:        cfg.SpeedLo + popRNG.Float64()*(cfg.SpeedHi-cfg.SpeedLo),
		}
		switch {
		case i < nSpam:
			w.Behavior = Spammer
		case i < nSpam+nAdv:
			w.Behavior = Adversarial
		case i < nSpam+nAdv+nCol:
			w.Behavior = Colluder
			w.ColludeAnswer = cfg.ColludeAnswer
		}
		workers[i] = w
	}
	// Shuffle so behaviours are not clustered by ID prefix.
	randx.Shuffle(popRNG, workers)
	return &Platform{cfg: cfg, rng: rng, workers: workers}, nil
}

// Workers returns the population (callers must not mutate).
func (p *Platform) Workers() []*Worker { return p.workers }

// Config returns the platform's configuration.
func (p *Platform) Config() Config { return p.cfg }

// MeanAccuracy reports the true mean accuracy of the population — the
// simulator's god view, used by tests and as the "known distribution"
// baseline the paper assumes for the prediction model.
func (p *Platform) MeanAccuracy() float64 {
	accs := make([]float64, len(p.workers))
	for i, w := range p.workers {
		accs[i] = w.Accuracy
	}
	return stats.Mean(accs)
}

// TotalSpent reports the cumulative fees charged for delivered
// assignments across all HITs.
func (p *Platform) TotalSpent() float64 {
	return math.Float64frombits(p.spentBits.Load())
}

// charge accounts one delivered assignment's fee with a lock-free CAS
// loop on the float's bits.
func (p *Platform) charge(fee float64) {
	for {
		old := p.spentBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + fee)
		if p.spentBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HIT is a published human-intelligence task: a batch of questions every
// assigned worker answers in full.
type HIT struct {
	ID        string
	Title     string
	Questions []Question
}

// Answer is a worker's answer to one question of a HIT.
type Answer struct {
	QuestionID string
	Value      string
}

// Assignment is one worker's completed copy of a HIT.
type Assignment struct {
	HITID      string
	Worker     *Worker
	Answers    []Answer // parallel to the HIT's Questions
	SubmitTime float64  // virtual seconds after publication
}

// AnswerTo returns this assignment's answer to the given question ID,
// or "" if the HIT had no such question.
func (a Assignment) AnswerTo(questionID string) string {
	for _, ans := range a.Answers {
		if ans.QuestionID == questionID {
			return ans.Value
		}
	}
	return ""
}

// Publication errors.
var (
	ErrNoQuestions   = errors.New("crowd: HIT has no questions")
	ErrNotEnoughWork = errors.New("crowd: not enough workers in the population")
)

// Publish broadcasts the HIT to the population and returns a Run that
// delivers n assignments asynchronously (in virtual time). The n workers
// are drawn uniformly without replacement — AMT's "any candidate worker
// can accept" semantics (Section 3.1).
func (p *Platform) Publish(hit HIT, n int) (*Run, error) {
	if len(hit.Questions) == 0 {
		return nil, ErrNoQuestions
	}
	for _, q := range hit.Questions {
		if err := q.Validate(); err != nil {
			return nil, err
		}
	}
	if n <= 0 {
		return nil, fmt.Errorf("crowd: assignments must be positive, got %d", n)
	}
	if n > len(p.workers) {
		return nil, fmt.Errorf("%w (need %d, have %d)", ErrNotEnoughWork, n, len(p.workers))
	}
	seq := p.hitSeq.Add(1)
	// A caller-supplied ID seeds the run from the ID alone, so the draw is
	// a pure function of (platform seed, hit ID) — concurrent publishers
	// get identical worker samples regardless of publish order, which is
	// what keeps the engine's pipeline deterministic. Auto-assigned IDs
	// keep the legacy sequence-based label.
	label := "hit/" + hit.ID
	if hit.ID == "" {
		hit.ID = fmt.Sprintf("HIT-%06d", seq)
		label = fmt.Sprintf("hit/%s/%d", hit.ID, seq)
	}
	runRNG := p.rng.Split(label)

	idx := runRNG.SampleWithoutReplacement(len(p.workers), n)
	pending := make([]Assignment, 0, n)
	for _, wi := range idx {
		w := p.workers[wi]
		if p.cfg.NoShowFraction > 0 && runRNG.Bool(p.cfg.NoShowFraction) {
			continue // accepted but never submitted
		}
		ansRNG := runRNG.Split("answers/" + w.ID)
		answers := make([]Answer, len(hit.Questions))
		for qi, q := range hit.Questions {
			answers[qi] = Answer{QuestionID: q.ID, Value: w.Answer(ansRNG, q)}
		}
		pending = append(pending, Assignment{
			HITID:      hit.ID,
			Worker:     w,
			Answers:    answers,
			SubmitTime: runRNG.Exp(w.Speed / p.cfg.MeanDelay),
		})
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].SubmitTime < pending[j].SubmitTime })
	return &Run{platform: p, hit: hit, pending: pending}, nil
}

// Run is one HIT's lifecycle: assignments are delivered in submit-time
// order via Next, and Cancel forgoes (and does not charge for) anything
// still outstanding. A Run is safe for concurrent use — in particular a
// concurrent Cancel is honoured by the next Next call, and a cancelled
// run never charges another fee.
type Run struct {
	platform *Platform
	hit      HIT
	pending  []Assignment

	mu        sync.Mutex // guards delivered, cancelled and charged
	delivered int
	cancelled bool
	charged   float64
}

// HIT returns the published HIT.
func (r *Run) HIT() HIT { return r.hit }

// Next delivers the next assignment in arrival order. ok is false when the
// run is exhausted or cancelled. Each delivered assignment is charged at
// the platform's per-assignment fee, exactly once.
func (r *Run) Next() (Assignment, bool) {
	r.mu.Lock()
	if r.cancelled || r.delivered >= len(r.pending) {
		r.mu.Unlock()
		return Assignment{}, false
	}
	a := r.pending[r.delivered]
	r.delivered++
	fee := r.platform.cfg.Economics.PerAssignment()
	r.charged += fee
	r.mu.Unlock()
	r.platform.charge(fee)
	return a, true
}

// Cancel stops the run: outstanding assignments are never delivered nor
// charged (the paper's footnote 3). Cancelling twice is a no-op.
func (r *Run) Cancel() {
	r.mu.Lock()
	r.cancelled = true
	r.mu.Unlock()
}

// Cancelled reports whether the run was cancelled.
func (r *Run) Cancelled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cancelled
}

// Delivered reports how many assignments have been delivered.
func (r *Run) Delivered() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.delivered
}

// Outstanding reports how many assignments remain undelivered (0 after
// Cancel).
func (r *Run) Outstanding() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cancelled {
		return 0
	}
	return len(r.pending) - r.delivered
}

// Charged reports the fees accrued by this run so far.
func (r *Run) Charged() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.charged
}

// Drain delivers every remaining assignment and returns them.
func (r *Run) Drain() []Assignment {
	out := make([]Assignment, 0, r.Outstanding())
	for {
		a, ok := r.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}
