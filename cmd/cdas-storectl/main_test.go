package main

// In-process CLI tests: seed a WAL store through the real service,
// drive the migrate subcommand via run(), and boot the result as an
// LSM-engine service.

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cdas/internal/jobs"
)

func seedStore(t *testing.T, dir string) {
	t.Helper()
	s, err := jobs.OpenService(jobs.ServiceConfig{Dir: dir, Engine: jobs.EngineWAL})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		job := jobs.Job{
			Name:   name,
			Kind:   jobs.KindTSA,
			Tenant: "acme",
			Query: jobs.Query{
				Keywords:         []string{"iPhone4S"},
				RequiredAccuracy: 0.95,
				Domain:           []string{"Good", "Bad"},
				Start:            time.Date(2011, 10, 14, 0, 0, 0, 0, time.UTC),
				Window:           24 * time.Hour,
			},
		}
		if _, err := s.Submit(job); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Claim(); !ok {
		t.Fatal("claim failed")
	}
	if err := s.Complete("alpha", 2.5); err != nil {
		t.Fatal(err)
	}
	if err := s.ChargeBudget("alpha", 2.5); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStorectlMigrate(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)

	var out, errOut bytes.Buffer
	if code := run([]string{"migrate", "-dir", dir}, &out, &errOut); code != 0 {
		t.Fatalf("migrate exited %d: %s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "migrated 3 jobs") {
		t.Fatalf("output missing job count:\n%s", out.String())
	}

	r, err := jobs.OpenService(jobs.ServiceConfig{Dir: dir, Engine: jobs.EngineLSM})
	if err != nil {
		t.Fatalf("boot migrated store: %v", err)
	}
	defer r.Close()
	st, ok := r.Status("alpha")
	if !ok || st.State != jobs.StateDone || st.Cost != 2.5 {
		t.Fatalf("alpha after migration = %+v/%v", st, ok)
	}
	if b := r.Budget(); b.GlobalSpent != 2.5 {
		t.Fatalf("budget after migration = %+v", b)
	}

	// Second run: idempotent success.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"migrate", "-dir", dir, "-quiet"}, &out, &errOut); code != 0 {
		t.Fatalf("re-run exited %d: %s", code, errOut.String())
	}
}

func TestStorectlUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code == 0 {
		t.Fatal("no args: want nonzero exit")
	}
	if code := run([]string{"defrag"}, &out, &errOut); code == 0 {
		t.Fatal("unknown command: want nonzero exit")
	}
	if code := run([]string{"migrate"}, &out, &errOut); code == 0 {
		t.Fatal("migrate without -dir: want nonzero exit")
	}
	if code := run([]string{"migrate", "-dir", t.TempDir()}, &out, &errOut); code == 0 {
		t.Fatal("migrate of empty dir: want nonzero exit")
	}
}
