package httpapi

import (
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cdas/api"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
	"cdas/internal/scheduler"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./internal/httpapi/ -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenController serves a fixed set of job records.
type goldenController struct{ statuses []jobs.Status }

func (c *goldenController) Submit(jobs.Job) (jobs.Plan, error) { return jobs.Plan{}, nil }
func (c *goldenController) Cancel(string) error                { return nil }
func (c *goldenController) Unpark(string) error                { return nil }
func (c *goldenController) Statuses() []jobs.Status            { return c.statuses }
func (c *goldenController) StatusesPage(after string, limit int, state jobs.State, tenant string) ([]jobs.Status, bool) {
	return pageStatuses(c.statuses, after, limit, state, tenant)
}
func (c *goldenController) Status(name string) (jobs.Status, bool) {
	for _, st := range c.statuses {
		if st.Job.Name == name {
			return st, true
		}
	}
	return jobs.Status{}, false
}

// goldenScheduler serves a fixed scheduler state.
type goldenScheduler struct{ st scheduler.State }

func (g goldenScheduler) State() scheduler.State { return g.st }

// goldenStatuses is the fixed job-record set behind the golden servers.
func goldenStatuses() []jobs.Status {
	start := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	query := jobs.Query{
		Keywords:         []string{"Kung Fu Panda 2"},
		RequiredAccuracy: 0.9,
		Domain:           []string{"Positive", "Neutral", "Negative"},
		Start:            start,
		Window:           24 * time.Hour,
	}
	return []jobs.Status{
		{
			Job:      jobs.Job{Name: "panda", Kind: jobs.KindTSA, Query: query, Priority: 2, Budget: 1.5},
			State:    jobs.StateRunning,
			Attempts: 1,
			Progress: 0.5,
			Cost:     0.21,
		},
		{
			Job:   jobs.Job{Name: "strapped", Kind: jobs.KindTSA, Query: query},
			State: jobs.StateParked,
		},
		{
			Job:      jobs.Job{Name: "thor", Kind: jobs.KindTSA, Query: query},
			State:    jobs.StateFailed,
			Attempts: 3,
			Progress: 0.25,
			Cost:     0.8,
			Error:    "run: platform exhausted",
		},
	}
}

// tenantServer serves the golden job set with tenant scopes attached —
// the fixture behind the tenant-filter golden.
func tenantServer() *Server {
	sts := goldenStatuses()
	sts[0].Job.Tenant = "acme"
	sts[1].Job.Tenant = "globex"
	sts[2].Job.Tenant = "acme"
	s := NewServer()
	s.SetJobs(&goldenController{statuses: sts})
	return s
}

// enumServer serves the golden job set plus one enumeration job with a
// fixed published result set — the fixture behind the enumeration and
// kind-filter goldens, separate so the pre-existing golden bodies stay
// byte-identical.
func enumServer() *Server {
	sts := goldenStatuses()
	sts = append(sts, jobs.Status{
		Job: jobs.Job{
			Name:   "finch",
			Kind:   jobs.KindEnumeration,
			Query:  jobs.Query{Keywords: []string{"finch species"}},
			Budget: 2,
			Enum:   &jobs.EnumSpec{ItemValue: 0.05, Universe: 12, SourceSeed: 7},
		},
		State:    jobs.StateRunning,
		Attempts: 1,
		Progress: 0.75,
		Cost:     0.18,
	})
	s := NewServer()
	s.SetJobs(&goldenController{statuses: sts})
	items := []api.EnumItem{
		{Key: "1f4a3c0d9e8b7a65", Text: "house finch", Count: 21, Batch: 0},
		{Key: "2b8e6f1a0c9d7e43", Text: "purple finch", Count: 18, Batch: 0},
		{Key: "3c9d7e2b1f0a8c61", Text: "cassin's finch", Count: 6, Batch: 2},
	}
	s.PublishEnumBatch(api.EnumStatus{
		Name:          "finch",
		Keywords:      []string{"finch species"},
		State:         api.JobRunning,
		Batches:       3,
		Contributions: 45,
		Distinct:      3,
		Spent:         0.18,
		Progress:      0.75,
		Estimate: &api.EnumEstimate{
			Observed:     3,
			Samples:      45,
			Singletons:   0,
			Coverage:     1,
			CV2:          0.2,
			Total:        4,
			Completeness: 0.75,
		},
		Items: items,
	}, &api.EnumBatch{
		Batch:         2,
		Contributions: 15,
		NewItems:      items[2:],
		ExpectedNew:   0.9,
		Cost:          0.06,
	})
	return s
}

// goldenServer assembles a Server whose every route renders from fixed
// inputs, so response bodies are byte-stable.
func goldenServer() *Server {
	s := NewServer()
	s.SetJobs(&goldenController{statuses: goldenStatuses()})
	reg := metrics.NewRegistry()
	reg.Add(metrics.CounterJobsSubmitted, 3)
	reg.Add(metrics.CounterJobsStarted, 2)
	reg.Add(metrics.CounterJobsParked, 1)
	reg.Add(metrics.CounterSchedCacheHits, 60)
	reg.Add(metrics.CounterSchedCacheMisses, 240)
	reg.Add(metrics.CounterSchedBatches, 9)
	reg.Add(metrics.CounterBudgetCharges, 4)
	s.SetCounters(reg)
	s.SetScheduler(goldenScheduler{st: scheduler.State{
		Generations:        3,
		PendingJobs:        1,
		DedupEnabled:       true,
		CacheEntries:       118,
		CacheHits:          60,
		CacheMisses:        240,
		QuestionsEnqueued:  310,
		QuestionsPublished: 118,
		QuestionsDeduped:   122,
		BatchesPublished:   9,
		JobsAdmitted:       5,
		JobsParked:         1,
		Budget: scheduler.BudgetSnapshot{
			GlobalLimit: 2.0,
			GlobalSpent: 0.648,
			Jobs: []scheduler.JobBudgetLine{
				{Job: "panda", JobBudget: scheduler.JobBudget{Limit: 1.5, Spent: 0.21}},
				{Job: "thor", JobBudget: scheduler.JobBudget{Spent: 0.438}},
			},
		},
	}})
	s.Update(QueryState{
		Name:        "panda",
		Domain:      []string{"Positive", "Neutral", "Negative"},
		Percentages: map[string]float64{"Positive": 0.5, "Neutral": 0.25, "Negative": 0.25},
		Reasons:     map[string][]string{"Positive": {"awesome", "fun"}, "Negative": {"boring"}},
		Items:       40,
		Progress:    0.5,
	})
	return s
}

// TestGoldenResponses locks every JSON response shape to a golden file:
// API drift shows up as a diff, not as a silently changed contract.
func TestGoldenResponses(t *testing.T) {
	ts := httptest.NewServer(goldenServer().Handler())
	defer ts.Close()
	cases := []struct {
		golden string
		method string
		path   string
	}{
		{"jobs_list.golden", http.MethodGet, "/jobs"},
		{"jobs_get.golden", http.MethodGet, "/jobs/panda"},
		{"jobs_get_parked.golden", http.MethodGet, "/jobs/strapped"},
		{"metrics.golden", http.MethodGet, "/api/metrics"},
		{"scheduler.golden", http.MethodGet, "/api/scheduler"},
		{"queries.golden", http.MethodGet, "/api/queries"},
		{"query.golden", http.MethodGet, "/api/query?name=panda"},
	}
	for _, c := range cases {
		t.Run(c.golden, func(t *testing.T) {
			req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s %s: status %d", c.method, c.path, resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", c.golden)
			if *update {
				if err := os.WriteFile(path, body, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if string(body) != string(want) {
				t.Errorf("%s %s drifted from %s:\n got: %s\nwant: %s",
					c.method, c.path, path, body, want)
			}
		})
	}
}

// TestGoldenUnattachedRoutes locks the 503 contract for servers missing
// their backends.
func TestGoldenUnattachedRoutes(t *testing.T) {
	ts := httptest.NewServer(NewServer().Handler())
	defer ts.Close()
	for _, path := range []string{"/jobs", "/api/scheduler"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s without backend: status %d, want 503", path, resp.StatusCode)
		}
	}
}
