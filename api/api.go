// Package api is the versioned wire contract of the CDAS v1 HTTP
// surface: the typed request/response DTOs exchanged by the server
// (internal/httpapi), the Go SDK (client) and any third-party consumer.
// Every shape here is stable within /v1 — additive evolution only.
//
// The contract is documented as OpenAPI in api/openapi.yaml; the golden
// tests under internal/httpapi/testdata pin the exact bytes.
package api

// Version is the API version prefix every v1 route lives under.
const Version = "v1"

// JobState is a job's lifecycle position on the wire. The values mirror
// the internal lifecycle state machine (internal/jobs).
type JobState string

// Job lifecycle states.
const (
	JobPending   JobState = "pending"
	JobRunning   JobState = "running"
	JobParked    JobState = "parked"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Valid reports whether s is one of the defined states.
func (s JobState) Valid() bool {
	switch s {
	case JobPending, JobRunning, JobParked, JobDone, JobFailed, JobCancelled:
		return true
	}
	return false
}

// Terminal reports whether s is absorbing: done, failed or cancelled.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Job kinds accepted by JobSubmission.Kind. POST /v1/jobs is the one
// kind-discriminated submission surface: the kind selects which spec
// block (Stream, Enum) applies and how the base query fields are
// interpreted.
const (
	// KindBatch is the accepted alias for the default one-shot batch
	// kind; the server normalises it to KindTSA.
	KindBatch       = "batch"
	KindTSA         = "tsa"
	KindImageTag    = "imagetag"
	KindCustom      = "custom"
	KindContinuous  = "continuous"
	KindEnumeration = "enumeration"
)

// JobSubmission is the POST /v1/jobs request body: the analytics query
// of the paper's Definition 1 plus a name and application kind. The
// contract is kind-discriminated: "batch" (alias for "tsa"),
// "imagetag" and "custom" jobs use the base query fields alone;
// "continuous" jobs additionally require the Stream spec; "enumeration"
// jobs require the Enum spec and ignore the accuracy/domain/window
// fields (an open-ended query has none).
type JobSubmission struct {
	Name string `json:"name"`
	// Kind selects the plan template; default "tsa".
	Kind             string   `json:"kind"`
	Keywords         []string `json:"keywords"`
	RequiredAccuracy float64  `json:"required_accuracy"`
	Domain           []string `json:"domain"`
	// Start is the query timestamp t in RFC 3339; zero means "now".
	Start string `json:"start,omitempty"`
	// Window is the query window w as a Go duration string ("24h").
	// Required for every kind except "enumeration".
	Window string `json:"window"`
	// Priority orders budget admission (higher first; default 0).
	Priority int `json:"priority,omitempty"`
	// Budget caps the job's crowd spend (0 = unlimited).
	Budget float64 `json:"budget,omitempty"`
	// Aggregator selects the answer-aggregation method; one of the
	// names GET /v1/aggregators lists. Empty selects the default,
	// "cdas". Unknown names are rejected with code "unknown_aggregator".
	Aggregator string `json:"aggregator,omitempty"`
	// Tenant scopes the job to the submitting organisation; GET
	// /v1/jobs can filter on it. Empty is the default scope.
	Tenant string `json:"tenant,omitempty"`
	// Stream is the "continuous" kind's spec block; required for that
	// kind, rejected for every other.
	Stream *StreamSpec `json:"stream,omitempty"`
	// Enum is the "enumeration" kind's spec block; required for that
	// kind, rejected for every other.
	Enum *EnumSpec `json:"enum,omitempty"`
}

// StreamSpec is the standing-query block of a kind-discriminated
// JobSubmission (kind "continuous"). Field meanings match the flattened
// legacy StreamSubmission fields one for one.
type StreamSpec struct {
	// Lateness is the watermark lag as a Go duration string; a window
	// closes once an event time that far past its end is seen. Empty
	// picks half the window.
	Lateness string `json:"lateness,omitempty"`
	// TargetFill is the batch-fill target the adaptive batcher aims
	// for, as a Go duration string. Empty picks half the window.
	TargetFill string `json:"target_fill,omitempty"`
	// WindowCapacity caps crowd questions per window (0 = engine real
	// slots per HIT).
	WindowCapacity int `json:"window_capacity,omitempty"`
	// MaxBacklog bounds buffered matched items across open windows
	// (0 = 4 x window capacity).
	MaxBacklog int `json:"max_backlog,omitempty"`
	// Items sizes the built-in deterministic source; 0 lets the server
	// default apply.
	Items int `json:"items,omitempty"`
	// Rate is the built-in source's mean arrival rate in items per
	// second of event time.
	Rate float64 `json:"rate,omitempty"`
	// SourceSeed seeds the built-in source's arrival process.
	SourceSeed uint64 `json:"source_seed,omitempty"`
}

// EnumSpec is the open-ended enumeration block of a kind-discriminated
// JobSubmission (kind "enumeration"): workers contribute set members in
// free text, the server dedups them canonically and stops by species
// estimation and marginal value instead of a per-question accuracy
// bound.
type EnumSpec struct {
	// ItemValue is the worth of one newly discovered member, in the
	// same currency as HIT prices; the next HIT batch is bought only
	// while E[new items per batch] x ItemValue exceeds the batch price.
	// Required, > 0.
	ItemValue float64 `json:"item_value"`
	// TargetCoverage optionally stops the job once the completeness
	// estimate reaches it (0 disables; must be < 1).
	TargetCoverage float64 `json:"target_coverage,omitempty"`
	// MaxBatches caps the number of HIT batches (0 = unlimited).
	MaxBatches int `json:"max_batches,omitempty"`
	// HITWorkers is how many workers answer each batch (0 = server
	// default).
	HITWorkers int `json:"hit_workers,omitempty"`
	// PerWorker is how many members each worker is asked for (0 =
	// server default).
	PerWorker int `json:"per_worker,omitempty"`
	// Universe sizes the built-in deterministic source's hidden set;
	// 0 lets the server default apply.
	Universe int `json:"universe,omitempty"`
	// Popularity is the built-in source's Zipf-like skew exponent
	// (0 picks the default).
	Popularity float64 `json:"popularity,omitempty"`
	// SourceSeed seeds the built-in source's draws.
	SourceSeed uint64 `json:"source_seed,omitempty"`
}

// JobStatus is the wire form of a job's lifecycle record, with the live
// query results attached when the run has published any.
type JobStatus struct {
	Name     string   `json:"name"`
	Kind     string   `json:"kind"`
	Keywords []string `json:"keywords"`
	State    JobState `json:"state"`
	Attempts int      `json:"attempts"`
	Progress float64  `json:"progress"`
	Cost     float64  `json:"cost"`
	Priority int      `json:"priority,omitempty"`
	Budget   float64  `json:"budget,omitempty"`
	// Aggregator is the job's answer-aggregation method; omitted when
	// the job runs the default ("cdas").
	Aggregator string `json:"aggregator,omitempty"`
	// Tenant is the job's organisation scope; omitted for the default
	// scope.
	Tenant  string      `json:"tenant,omitempty"`
	Error   string      `json:"error,omitempty"`
	Results *QueryState `json:"results,omitempty"`
}

// JobList is the paginated GET /v1/jobs response envelope.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
	// NextPageToken, when non-empty, fetches the next page when passed
	// back as ?page_token=.
	NextPageToken string `json:"next_page_token,omitempty"`
}

// QueryState is the live presentation of one query — the paper's
// Figure 4 row: running percentages, reason keywords and progress,
// refreshed as the crowdsourcing engine accepts answers.
type QueryState struct {
	Name        string              `json:"name"`
	Domain      []string            `json:"domain"`
	Percentages map[string]float64  `json:"percentages"`
	Reasons     map[string][]string `json:"reasons"`
	Items       int                 `json:"items"`
	// Progress of the crowdsourcing job in [0, 1].
	Progress float64 `json:"progress"`
	// Done marks a finished job — successfully completed, failed or
	// cancelled; Error distinguishes the unhappy endings.
	Done bool `json:"done"`
	// Confidence is the mean aggregator confidence over the query's
	// accepted answers; omitted until an answer is accepted.
	Confidence float64 `json:"confidence,omitempty"`
	// Quality is the mean voter agreement with the accepted answers;
	// omitted until an answer is accepted.
	Quality float64 `json:"quality,omitempty"`
	// Error carries the failure when a followed stream ended with one;
	// empty for healthy queries.
	Error string `json:"error,omitempty"`
}

// QueryList is the GET /v1/queries response envelope.
type QueryList struct {
	Queries []QueryState `json:"queries"`
}

// SSE event types pushed by GET /v1/queries/{name}/events. Each event's
// data is one QueryState revision; the event id is the revision number
// (monotonically increasing per query), so Last-Event-ID resumes
// without replaying already-seen states.
const (
	// EventState carries an intermediate QueryState revision.
	EventState = "state"
	// EventDone carries the terminal QueryState; the server closes the
	// stream after sending it.
	EventDone = "done"
)

// StreamSubmission is the POST /v1/streams request body: a standing
// (continuous) query over an arrival stream. Window is the tumbling
// event-time window width; the job never ends on its own unless the
// source is finite (items > 0).
type StreamSubmission struct {
	Name             string   `json:"name"`
	Keywords         []string `json:"keywords"`
	RequiredAccuracy float64  `json:"required_accuracy"`
	Domain           []string `json:"domain"`
	// Start is the stream origin (window 0 starts here) in RFC 3339;
	// zero means "now".
	Start string `json:"start,omitempty"`
	// Window is the tumbling window width as a Go duration string.
	Window string `json:"window"`
	// Lateness is the watermark lag as a Go duration string; a window
	// closes once an event time that far past its end is seen. Empty
	// picks half the window.
	Lateness string `json:"lateness,omitempty"`
	// TargetFill is the batch-fill target the adaptive batcher aims
	// for, as a Go duration string. Empty picks half the window.
	TargetFill string `json:"target_fill,omitempty"`
	// WindowCapacity caps crowd questions per window (0 = engine real
	// slots per HIT).
	WindowCapacity int `json:"window_capacity,omitempty"`
	// MaxBacklog bounds buffered matched items across open windows
	// (0 = 4 x window capacity).
	MaxBacklog int `json:"max_backlog,omitempty"`
	// Items sizes the built-in deterministic source; 0 lets the server
	// default apply.
	Items int `json:"items,omitempty"`
	// Rate is the built-in source's mean arrival rate in items per
	// second of event time.
	Rate float64 `json:"rate,omitempty"`
	// SourceSeed seeds the built-in source's arrival process.
	SourceSeed uint64 `json:"source_seed,omitempty"`
	// Priority, Budget, Aggregator and Tenant mean exactly what they
	// mean on JobSubmission.
	Priority   int     `json:"priority,omitempty"`
	Budget     float64 `json:"budget,omitempty"`
	Aggregator string  `json:"aggregator,omitempty"`
	Tenant     string  `json:"tenant,omitempty"`
}

// StreamWindow is one closed tumbling window on the wire — the payload
// of the SSE "window" event and StreamStatus.LastWindow.
type StreamWindow struct {
	// Window is the tumbling-window index (0 = the first window after
	// Start).
	Window int `json:"window"`
	// Start and End bound the window's event-time interval, RFC 3339.
	Start string `json:"start"`
	End   string `json:"end"`
	// Items = Answered + Degraded + Dropped.
	Items    int `json:"items"`
	Answered int `json:"answered"`
	// Degraded items settled with partial-vote verdicts inferred from
	// the window majority (saturation).
	Degraded int `json:"degraded,omitempty"`
	// Dropped items got no verdict at all.
	Dropped int `json:"dropped,omitempty"`
	// BatchSize is the adaptive batch size the window ran with; Shed
	// marks a window opened under saturation with halved batch and
	// capacity.
	BatchSize   int                `json:"batch_size"`
	Shed        bool               `json:"shed,omitempty"`
	Percentages map[string]float64 `json:"percentages"`
	Confidence  float64            `json:"confidence,omitempty"`
	Quality     float64            `json:"quality,omitempty"`
	Cost        float64            `json:"cost"`
	CacheHits   int                `json:"cache_hits,omitempty"`
}

// StreamStatus is the GET /v1/streams/{name} response: the standing
// query's cumulative accounting and running fold. Job lifecycle detail
// (attempts, park/fail reasons) lives on GET /v1/jobs/{name} — a
// stream is a continuous job underneath.
type StreamStatus struct {
	Name     string   `json:"name"`
	Keywords []string `json:"keywords"`
	Domain   []string `json:"domain"`
	// State is the underlying continuous job's lifecycle state.
	State JobState `json:"state"`
	// WindowsClosed counts durably committed windows.
	WindowsClosed int `json:"windows_closed"`
	// Cumulative arrival accounting: items seen, items matching the
	// filter, accounted drops (late, overflow, no-verdict), degraded
	// verdicts.
	Seen     int64 `json:"seen"`
	Matched  int64 `json:"matched"`
	Dropped  int64 `json:"dropped,omitempty"`
	Degraded int64 `json:"degraded,omitempty"`
	// Spent is the cumulative attributed crowd cost across windows.
	Spent    float64 `json:"spent"`
	Progress float64 `json:"progress"`
	Done     bool    `json:"done"`
	// LastWindow is the most recently closed window.
	LastWindow *StreamWindow `json:"last_window,omitempty"`
	// Results is the running whole-stream fold.
	Results *QueryState `json:"results,omitempty"`
	Error   string      `json:"error,omitempty"`
}

// StreamList is the GET /v1/streams response envelope.
type StreamList struct {
	Streams []StreamStatus `json:"streams"`
}

// StreamEvent is the data payload of GET /v1/streams/{name}/events SSE
// frames: every event carries the stream's state snapshot; "window"
// events additionally carry the window that just closed.
type StreamEvent struct {
	// Window is the closed window on EventWindow events; nil on
	// EventState replays and EventDone.
	Window *StreamWindow `json:"window,omitempty"`
	State  StreamStatus  `json:"state"`
}

// EventWindow is the SSE event type carrying one closed stream window.
// Stream SSE also reuses EventState (snapshot replay on connect) and
// EventDone (terminal state; the server closes the stream after it).
const EventWindow = "window"

// EnumItem is one discovered member of an enumeration job's result set.
type EnumItem struct {
	// Key is the member's canonical identity.
	Key string `json:"key"`
	// Text is the normalised display form.
	Text string `json:"text"`
	// Count is how many contributions named it.
	Count int `json:"count"`
	// Batch is the HIT batch that first surfaced it.
	Batch int `json:"batch"`
}

// EnumEstimate is the live Chao92 species estimate of an enumeration
// job: how big the underlying set looks given what the crowd has
// contributed so far.
type EnumEstimate struct {
	// Observed is the distinct members seen.
	Observed int `json:"observed"`
	// Samples is the total contributions, repeats included.
	Samples int `json:"samples"`
	// Singletons is the members seen exactly once.
	Singletons int `json:"singletons"`
	// Coverage is the Good-Turing sample coverage (1 - singletons/samples).
	Coverage float64 `json:"coverage"`
	// CV2 is the squared coefficient of variation correcting for
	// popularity skew.
	CV2 float64 `json:"cv2"`
	// Total is the estimated size of the underlying set.
	Total float64 `json:"total"`
	// Completeness is observed/total, clamped to [0, 1].
	Completeness float64 `json:"completeness"`
}

// EnumBatch is one completed enumeration HIT batch — the payload of the
// SSE "batch" event and EnumStatus.LastBatch.
type EnumBatch struct {
	// Batch is the 0-based batch index.
	Batch int `json:"batch"`
	// Contributions is how many answers the batch collected.
	Contributions int `json:"contributions"`
	// NewItems are the members this batch discovered.
	NewItems []EnumItem `json:"new_items,omitempty"`
	// ExpectedNew is the E[new items] the marginal-value rule priced
	// the batch at before buying it.
	ExpectedNew float64 `json:"expected_new"`
	Cost        float64 `json:"cost"`
}

// Stop reasons an EnumStatus.Stopped can carry: why an enumeration
// stopped buying HIT batches.
const (
	// StopMarginalValue: E[new items per batch] x item value fell below
	// the HIT price — the principled open-ended stop.
	StopMarginalValue = "marginal_value"
	// StopTargetCoverage: the completeness estimate reached the spec's
	// target.
	StopTargetCoverage = "target_coverage"
	// StopMaxBatches: the spec's batch cap was reached.
	StopMaxBatches = "max_batches"
	// StopSourceExhausted: the source had no contributions left.
	StopSourceExhausted = "source_exhausted"
)

// EnumStatus is the GET /v1/enumerations/{name} response: the growing
// result set, the live species estimate and the stop state. Job
// lifecycle detail lives on GET /v1/jobs/{name} — an enumeration is a
// job underneath.
type EnumStatus struct {
	Name     string   `json:"name"`
	Keywords []string `json:"keywords"`
	// State is the underlying job's lifecycle state.
	State JobState `json:"state"`
	// Batches counts durably committed HIT batches.
	Batches int `json:"batches"`
	// Contributions is the total answers collected, repeats included.
	Contributions int64 `json:"contributions"`
	// Distinct is the result set's size.
	Distinct int `json:"distinct"`
	// Spent is the cumulative crowd cost across batches.
	Spent    float64 `json:"spent"`
	Progress float64 `json:"progress"`
	Done     bool    `json:"done"`
	// Stopped records why the job stopped buying batches
	// ("marginal_value", "target_coverage", "max_batches",
	// "source_exhausted"); empty while it is still collecting.
	Stopped string `json:"stopped,omitempty"`
	// Estimate is the current Chao92 estimate; omitted before the first
	// batch.
	Estimate *EnumEstimate `json:"estimate,omitempty"`
	// LastBatch is the most recently completed batch.
	LastBatch *EnumBatch `json:"last_batch,omitempty"`
	// Items is the discovered set sorted by text.
	Items []EnumItem `json:"items,omitempty"`
	Error string     `json:"error,omitempty"`
}

// EnumList is the paginated GET /v1/enumerations response envelope.
type EnumList struct {
	Enumerations []EnumStatus `json:"enumerations"`
	// NextPageToken, when non-empty, fetches the next page when passed
	// back as ?page_token=.
	NextPageToken string `json:"next_page_token,omitempty"`
}

// EnumEvent is the data payload of GET /v1/enumerations/{name}/events
// SSE frames: every event carries the enumeration's state snapshot;
// "batch" events additionally carry the batch that just completed,
// newly discovered items included.
type EnumEvent struct {
	// Batch is the completed batch on EventBatch events; nil on
	// EventState replays and EventDone.
	Batch *EnumBatch `json:"batch,omitempty"`
	State EnumStatus `json:"state"`
}

// EventBatch is the SSE event type carrying one completed enumeration
// batch. Enumeration SSE also reuses EventState (snapshot replay on
// connect) and EventDone (terminal state; the server closes the stream
// after it).
const EventBatch = "batch"

// SchedulerState is the cross-query scheduler's reportable state:
// generation batching, dedup-cache effectiveness and budget ledger.
type SchedulerState struct {
	Generations        int            `json:"generations"`
	PendingJobs        int            `json:"pending_jobs"`
	DedupEnabled       bool           `json:"dedup_enabled"`
	CacheEntries       int            `json:"cache_entries"`
	CacheHits          int64          `json:"cache_hits"`
	CacheMisses        int64          `json:"cache_misses"`
	QuestionsEnqueued  int64          `json:"questions_enqueued"`
	QuestionsPublished int64          `json:"questions_published"`
	QuestionsDeduped   int64          `json:"questions_deduped"`
	BatchesPublished   int64          `json:"batches_published"`
	JobsAdmitted       int64          `json:"jobs_admitted"`
	JobsParked         int64          `json:"jobs_parked"`
	Budget             BudgetSnapshot `json:"budget"`
}

// BudgetSnapshot is the budget ledger's state.
type BudgetSnapshot struct {
	GlobalLimit float64         `json:"global_limit"` // 0 = unlimited
	GlobalSpent float64         `json:"global_spent"`
	Jobs        []JobBudgetLine `json:"jobs,omitempty"` // sorted by job name
}

// JobBudgetLine is one job's budget line: its cap and what it has spent.
type JobBudgetLine struct {
	Job   string  `json:"job"`
	Limit float64 `json:"limit"` // 0 = unlimited
	Spent float64 `json:"spent"`
}

// AggregatorInfo describes one registered answer-aggregation method —
// an entry of the GET /v1/aggregators discovery response.
type AggregatorInfo struct {
	// Name is the registry key accepted by JobSubmission.Aggregator.
	Name string `json:"name"`
	// Incremental reports whether the method folds assignments in one
	// at a time (cheap on heavy-traffic paths) or runs once per batch.
	Incremental bool `json:"incremental"`
	// ResponseType is the worker-response shape the method aggregates
	// (currently always "categorical").
	ResponseType string `json:"response_type"`
	// Description is a one-line human-readable summary.
	Description string `json:"description,omitempty"`
}

// AggregatorList is the GET /v1/aggregators response envelope.
type AggregatorList struct {
	// Default is the name jobs run with when they do not pick one.
	Default     string           `json:"default"`
	Aggregators []AggregatorInfo `json:"aggregators"`
}

// Metrics is the GET /v1/metrics response: operational counters.
type Metrics struct {
	Counters map[string]int64 `json:"counters"`
}

// Health is the GET /v1/healthz response.
type Health struct {
	Status  string `json:"status"`
	Version string `json:"version"`
}
