// Package engine implements the CDAS crowdsourcing engine (Section 2.1 and
// Algorithm 1 of the paper): the component that turns buffered analytics
// questions into HITs, plans worker counts with the prediction model,
// estimates worker accuracy from embedded golden questions, verifies
// answers with the probability-based model, and — in online mode —
// terminates HITs early once results are stable.
//
// Per-HIT flow (Algorithm 1 plus Sections 3.3 and 4.2):
//
//  1. Batch questions into a HIT of Config.HITSize slots, injecting
//     ceil(α·B) golden questions (Section 3.3).
//  2. n = predictWorkerNumber(C) from the prediction model, with μ taken
//     from the profile store once sampling has warmed up (fallback: the
//     configured population estimate).
//  3. Publish and consume assignments in arrival order. Each arriving
//     assignment is first scored on the golden questions, updating the
//     worker's profile, so their vote weight reflects the freshest
//     estimate; votes for real questions then flow into per-question
//     online verifiers.
//  4. After every arrival the termination strategy is evaluated over all
//     real questions; when every question's leader is safe, the HIT is
//     cancelled and the outstanding assignments are never paid for.
//  5. Answers are accepted by maximum confidence (Equation 4).
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"cdas/internal/core/aggregate"
	"cdas/internal/core/online"
	"cdas/internal/core/prediction"
	"cdas/internal/core/sampling"
	"cdas/internal/core/verification"
	"cdas/internal/crowd"
	"cdas/internal/privacy"
	"cdas/internal/profile"
	"cdas/internal/randx"
)

// Run abstracts one published HIT's asynchronous assignment stream.
// *crowd.Run satisfies it; a production deployment would implement it over
// the real AMT API.
type Run interface {
	Next() (crowd.Assignment, bool)
	Cancel()
	Charged() float64
	HIT() crowd.HIT
}

// Platform abstracts the crowdsourcing marketplace.
type Platform interface {
	Publish(hit crowd.HIT, n int) (Run, error)
}

// CrowdPlatform adapts *crowd.Platform (the simulator) to the engine's
// Platform interface.
type CrowdPlatform struct{ *crowd.Platform }

// Publish implements Platform.
func (p CrowdPlatform) Publish(hit crowd.HIT, n int) (Run, error) {
	return p.Platform.Publish(hit, n)
}

// Config tunes the engine. Zero fields take the documented defaults.
type Config struct {
	// JobName keys worker profiles; accuracies are per job kind.
	JobName string
	// RequiredAccuracy is the query's C. Default 0.9.
	RequiredAccuracy float64
	// SamplingRate is α, the golden fraction per HIT. Default 0.2.
	// Set DisableSampling to run without golden questions instead of
	// setting this to zero (a zero value takes the default).
	SamplingRate float64
	// DisableSampling turns golden-question injection off entirely;
	// worker votes then carry FallbackAccuracy (or prior profiles).
	DisableSampling bool
	// HITSize is B, the questions per HIT. Default 100.
	HITSize int
	// Strategy picks the early-termination condition. Default Never
	// (process all planned answers), matching the paper's offline mode.
	Strategy online.Strategy
	// FallbackAccuracy is the population-mean estimate used for workers
	// without profiles and for prediction before sampling warms up.
	// Default 0.7.
	FallbackAccuracy float64
	// MaxWorkers caps the planned per-HIT assignment count. Default 51.
	MaxWorkers int
	// Privacy, when set, sanitises question text and filters blocked
	// workers' answers.
	Privacy *privacy.Manager
	// RepostShortfall republishes under-answered HITs (no-show workers)
	// until the planned assignment count is reached, up to maxReposts
	// supplemental HITs.
	RepostShortfall bool
	// MaxInflightHITs bounds how many HITs the pipeline keeps published
	// and draining at once (Stream / ProcessAllContext). Default 1 —
	// the paper's one-HIT-at-a-time offline mode; raise it to overlap
	// HIT lifetimes on a platform where assignments take real time to
	// arrive. Results are deterministic at any value: every HIT draws
	// from a seed split off the engine seed by batch index, never from
	// its neighbours' progress.
	MaxInflightHITs int
	// Aggregator names the answer-aggregation method from the
	// aggregate registry. Default aggregate.DefaultName ("cdas"), the
	// paper's probability-based verification model — the only method
	// that supports online early termination (Strategy). Batch-only
	// methods run once per HIT when its assignment stream drains.
	Aggregator string
	// QualityFeedback, when set, records each worker's agreement with
	// the accepted answers into the profile store after every HIT, so
	// vote weights improve online even without golden questions. Off by
	// default: the paper's model learns from golden outcomes only.
	QualityFeedback bool
	// Seed drives the golden-question placement shuffle.
	Seed uint64
}

// maxReposts bounds the supplemental HITs per batch.
const maxReposts = 2

func (c Config) withDefaults() Config {
	if c.JobName == "" {
		c.JobName = "default"
	}
	if c.RequiredAccuracy == 0 {
		c.RequiredAccuracy = 0.9
	}
	if c.DisableSampling {
		c.SamplingRate = 0
	} else if c.SamplingRate == 0 {
		c.SamplingRate = sampling.DefaultRate
	}
	if c.HITSize == 0 {
		c.HITSize = sampling.DefaultHITSize
	}
	if c.FallbackAccuracy == 0 {
		c.FallbackAccuracy = 0.7
	}
	if c.MaxWorkers == 0 {
		c.MaxWorkers = 51
	}
	if c.MaxInflightHITs == 0 {
		c.MaxInflightHITs = 1
	}
	if c.Aggregator == "" {
		c.Aggregator = aggregate.DefaultName
	}
	return c
}

// Validate reports configuration errors after defaulting.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.RequiredAccuracy <= 0 || c.RequiredAccuracy >= 1 || math.IsNaN(c.RequiredAccuracy) {
		return fmt.Errorf("engine: required accuracy must be in (0,1), got %v", c.RequiredAccuracy)
	}
	if c.SamplingRate < 0 || c.SamplingRate >= 1 {
		return fmt.Errorf("engine: sampling rate must be in [0,1), got %v", c.SamplingRate)
	}
	if c.HITSize <= 0 {
		return fmt.Errorf("engine: HIT size must be positive, got %d", c.HITSize)
	}
	if c.FallbackAccuracy <= 0.5 || c.FallbackAccuracy >= 1 {
		return fmt.Errorf("engine: fallback accuracy must be in (0.5,1), got %v", c.FallbackAccuracy)
	}
	if c.MaxWorkers < 1 {
		return fmt.Errorf("engine: max workers must be >= 1, got %d", c.MaxWorkers)
	}
	if c.MaxInflightHITs < 1 {
		return fmt.Errorf("engine: max in-flight HITs must be >= 1, got %d", c.MaxInflightHITs)
	}
	if err := aggregate.Validate(c.Aggregator); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	return nil
}

// accuracyPseudoCounts is the prior strength of the vote-weight
// estimates: the first few golden outcomes move a worker's weight only
// moderately away from the population mean.
const accuracyPseudoCounts = 4

// Engine is the crowdsourcing engine. It is safe for concurrent use: the
// pipeline (Stream, ProcessAllContext) publishes and drains several HITs
// at once, and independent goroutines may call ProcessBatch concurrently.
type Engine struct {
	platform Platform
	store    *profile.Store
	cfg      Config
	agg      aggregate.Aggregator

	// mu guards rng, the engine-owned draw stream of the sequential path
	// (ProcessBatch golden placement). Pipeline batches never draw from
	// it — each splits a child source keyed by pipeline and batch index,
	// so concurrent HITs cannot perturb each other's randomness.
	mu  sync.Mutex
	rng *randx.Source

	// pipelineSeq numbers Stream/ProcessAllContext invocations so their
	// HIT IDs and derived seeds stay unique across an engine's lifetime.
	pipelineSeq atomic.Uint64
}

// New constructs an Engine. store may be nil, in which case a fresh
// profile store is created (no history).
func New(platform Platform, store *profile.Store, cfg Config) (*Engine, error) {
	if platform == nil {
		return nil, errors.New("engine: platform is required")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if store == nil {
		store = profile.NewStore()
	}
	agg, ok := aggregate.Get(cfg.Aggregator)
	if !ok {
		// Unreachable after Validate; kept as a guard.
		return nil, fmt.Errorf("engine: unknown aggregator %q", cfg.Aggregator)
	}
	return &Engine{
		platform: platform,
		store:    store,
		cfg:      cfg,
		agg:      agg,
		rng:      randx.New(cfg.Seed ^ 0xcda5cda5),
	}, nil
}

// Aggregator returns the engine's effective aggregation method name.
func (e *Engine) Aggregator() string { return e.cfg.Aggregator }

// Store exposes the profile store (e.g. for persistence).
func (e *Engine) Store() *profile.Store { return e.store }

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// MeanAccuracy returns the engine's current population-mean estimate: the
// profile store's mean once at least minProfiles workers are known,
// otherwise the configured fallback.
func (e *Engine) MeanAccuracy() float64 {
	const minProfiles = 5
	if mu, ok := e.store.MeanAccuracy(e.cfg.JobName); ok && len(e.store.Workers(e.cfg.JobName)) >= minProfiles {
		// A usable μ must stay above 1/2 for the prediction model.
		if mu > 0.5 {
			return mu
		}
	}
	return e.cfg.FallbackAccuracy
}

// RealSlots reports how many real (non-golden) questions fit in one HIT
// under the engine's size and sampling configuration — the chunking unit
// of ProcessAll/Stream, which upstream schedulers use to price a batch.
func (e *Engine) RealSlots() int {
	return e.cfg.HITSize - sampling.GoldenCount(e.cfg.HITSize, e.cfg.SamplingRate)
}

// PlanWorkers runs the prediction model for the engine's required
// accuracy: the minimum odd n with E[P_{n/2}] >= C, capped at MaxWorkers.
func (e *Engine) PlanWorkers() (int, error) {
	model, err := prediction.New(e.MeanAccuracy())
	if err != nil {
		return 0, err
	}
	n, err := model.RequiredWorkers(e.cfg.RequiredAccuracy)
	if err != nil {
		return 0, err
	}
	if n > e.cfg.MaxWorkers {
		n = e.cfg.MaxWorkers
		if n%2 == 0 {
			n--
		}
	}
	return n, nil
}

// QuestionResult is the engine's verdict for one real question.
type QuestionResult struct {
	Question   crowd.Question
	Answer     string  // accepted answer (highest confidence)
	Confidence float64 // the aggregator's confidence in the accepted answer
	Ranked     []verification.Scored
	Votes      int // votes actually received for this question
	// Quality is the share of this question's voters that agreed with
	// the accepted answer — a per-result agreement signal independent of
	// the aggregator's own confidence scale. Zero when unanswered.
	Quality float64
}

// BatchResult reports one processed HIT.
type BatchResult struct {
	HITID           string
	PlannedWorkers  int     // n from the prediction model
	UsedWorkers     int     // assignments consumed before termination
	Cost            float64 // fees charged for this HIT (reposts included)
	TerminatedEarly bool
	GoldenCount     int
	// Reposts counts supplemental HITs published to cover no-show
	// shortfalls (Config.RepostShortfall).
	Reposts int
	Results []QuestionResult
	// WorkerQuality is the aggregator's per-worker quality estimate for
	// this HIT: agreement-with-aggregate for the voting methods, EM
	// accuracy for Dawid–Skene, skill for Wawa and Zero-Based Skill.
	WorkerQuality map[string]float64
}

// ProcessBatch runs one HIT over up to HITSize questions (minus golden
// slots). golden supplies ground-truth questions for accuracy sampling;
// it may be empty only when SamplingRate is 0. It returns an error if
// real is empty or exceeds the available slots.
func (e *Engine) ProcessBatch(real, golden []crowd.Question) (BatchResult, error) {
	return e.ProcessBatchContext(context.Background(), real, golden)
}

// ProcessBatchContext is ProcessBatch with cancellation: when ctx is
// cancelled mid-HIT the published run is cancelled on the platform
// (outstanding assignments are never charged) and ctx's error is returned.
func (e *Engine) ProcessBatchContext(ctx context.Context, real, golden []crowd.Question) (BatchResult, error) {
	n, err := e.PlanWorkers()
	if err != nil {
		return BatchResult{}, err
	}
	return e.runBatch(ctx, batchJob{
		real:    real,
		golden:  golden,
		workers: n,
		meanAcc: e.MeanAccuracy(),
		snap:    e.store.Snapshot(e.cfg.JobName),
	})
}

// goldenTally is one worker's golden-question record within a single HIT.
type goldenTally struct{ correct, total int }

// batchJob is one HIT's work order for runBatch.
type batchJob struct {
	// hitID, when non-empty, names the published HIT so the platform's
	// worker draw is a pure function of the ID (pipeline batches). Empty
	// lets the platform assign a sequential ID (sequential path).
	hitID string
	// rng owns the golden placement draws. nil means the engine-owned
	// stream, taken under e.mu (sequential path).
	rng     *randx.Source
	real    []crowd.Question
	golden  []crowd.Question
	workers int              // planned assignment count n
	meanAcc float64          // population-mean estimate for verifier priors
	snap    profile.Snapshot // vote-weight baseline (pre-HIT history)
}

// runBatch executes one HIT end to end: assemble, publish, drain the
// assignment stream, optionally repost shortfalls, and rank answers.
// Vote weights combine job.snap with the HIT's own golden tally, so the
// outcome never depends on what concurrent HITs write to the shared
// profile store mid-flight.
func (e *Engine) runBatch(ctx context.Context, job batchJob) (BatchResult, error) {
	real, golden := job.real, job.golden
	if len(real) == 0 {
		return BatchResult{}, errors.New("engine: no questions to process")
	}
	nGoldenNeeded := sampling.GoldenCount(e.cfg.HITSize, e.cfg.SamplingRate)
	if len(real) > e.cfg.HITSize-nGoldenNeeded {
		return BatchResult{}, fmt.Errorf("engine: %d questions exceed %d real slots per HIT",
			len(real), e.cfg.HITSize-nGoldenNeeded)
	}
	// Scale the golden count down for partial batches, keeping the α
	// ratio, but keep at least one golden question when sampling is on.
	b := len(real) + int(math.Ceil(e.cfg.SamplingRate/(1-e.cfg.SamplingRate)*float64(len(real))))
	nGolden := b - len(real)
	if e.cfg.SamplingRate > 0 && nGolden == 0 {
		nGolden = 1
	}
	if nGolden > len(golden) {
		return BatchResult{}, fmt.Errorf("engine: need %d golden questions, have %d", nGolden, len(golden))
	}

	// Assemble and shuffle the HIT's question list. Sanitisation happens
	// before anything is stored or published, so neither the platform nor
	// the engine's own results ever carry unmasked text.
	sanitize := func(q crowd.Question) crowd.Question {
		if e.cfg.Privacy != nil {
			return e.cfg.Privacy.SanitizeQuestion(q)
		}
		return q
	}
	questions, goldenIDs, realIDs, err := func() ([]crowd.Question, map[string]crowd.Question, map[string]crowd.Question, error) {
		rng := job.rng
		if rng == nil {
			e.mu.Lock()
			defer e.mu.Unlock()
			rng = e.rng
		}
		questions := make([]crowd.Question, 0, len(real)+nGolden)
		goldenIDs := make(map[string]crowd.Question, nGolden)
		for _, idx := range rng.SampleWithoutReplacement(len(golden), nGolden) {
			q := sanitize(golden[idx])
			goldenIDs[q.ID] = q
			questions = append(questions, q)
		}
		realIDs := make(map[string]crowd.Question, len(real))
		for _, raw := range real {
			q := sanitize(raw)
			if _, dup := realIDs[q.ID]; dup {
				return nil, nil, nil, fmt.Errorf("engine: duplicate question id %q", q.ID)
			}
			if _, clash := goldenIDs[q.ID]; clash {
				return nil, nil, nil, fmt.Errorf("engine: question id %q collides with a golden question", q.ID)
			}
			realIDs[q.ID] = q
			questions = append(questions, q)
		}
		randx.Shuffle(rng, questions)
		return questions, goldenIDs, realIDs, nil
	}()
	if err != nil {
		return BatchResult{}, err
	}

	n := job.workers
	run, err := e.platform.Publish(crowd.HIT{ID: job.hitID, Title: e.cfg.JobName, Questions: questions}, n)
	if err != nil {
		return BatchResult{}, err
	}

	// Per-question folders for incremental aggregators (the CDAS model's
	// folder wraps its online verifier, m = |domain| — the engine knows
	// R for each question it generated). Batch-only aggregators instead
	// run once over the collected votes when the stream drains.
	inc, isInc := e.agg.(aggregate.Incremental)
	folders := make(map[string]aggregate.Folder, len(real))
	if isInc {
		for id, q := range realIDs {
			f, err := inc.NewFolder(aggregate.Spec{Planned: n, M: len(q.Domain), MeanAccuracy: job.meanAcc})
			if err != nil {
				return BatchResult{}, err
			}
			folders[id] = f
		}
	}
	// Votes are collected for every aggregator: batch methods consume
	// them wholesale, and the per-question agreement quality is computed
	// from them either way.
	collected := make(map[string][]aggregate.Vote, len(real))

	res := BatchResult{HITID: run.HIT().ID, PlannedWorkers: n, GoldenCount: nGolden}
	tallies := make(map[string]goldenTally)
	consume := func(run Run) error {
		defer func() { res.Cost += run.Charged() }()
		for {
			if err := ctx.Err(); err != nil {
				// Cancelled mid-HIT: forgo (and never pay for) the
				// outstanding assignments, exactly once.
				run.Cancel()
				return err
			}
			a, ok := run.Next()
			if !ok {
				return nil
			}
			if e.cfg.Privacy.Blocked(a.Worker.ID) {
				continue // answers from barred workers are discarded (still paid)
			}
			res.UsedWorkers++
			// Score golden questions first so this worker's vote weight
			// uses the freshest estimate (Algorithm 4). Outcomes go to
			// the shared store (history for later pipelines) and to the
			// HIT-local tally the weight is actually computed from.
			t := tallies[a.Worker.ID]
			for id, gq := range goldenIDs {
				correct := a.AnswerTo(id) == gq.Truth
				e.store.Record(e.cfg.JobName, a.Worker.ID, correct)
				t.total++
				if correct {
					t.correct++
				}
			}
			tallies[a.Worker.ID] = t
			// Vote weights shrink towards the population mean until enough
			// golden evidence accumulates; see profile.ShrunkAccuracy.
			acc := job.snap.ShrunkAccuracy(a.Worker.ID, t.correct, t.total, e.cfg.FallbackAccuracy, accuracyPseudoCounts)
			for id := range realIDs {
				vote := aggregate.Vote{
					Worker:   a.Worker.ID,
					Accuracy: acc,
					Answer:   a.AnswerTo(id),
				}
				if isInc {
					if err := folders[id].Fold(vote); err != nil {
						return fmt.Errorf("engine: question %s: %w", id, err)
					}
				} else if len(collected[id]) >= n {
					return fmt.Errorf("engine: question %s: %w", id, aggregate.ErrOverfilled)
				}
				collected[id] = append(collected[id], vote)
			}
			if isInc && e.cfg.Strategy != online.Never && allTerminated(folders, e.cfg.Strategy) {
				run.Cancel()
				res.TerminatedEarly = true
				return nil
			}
		}
	}
	if err := consume(run); err != nil {
		return BatchResult{}, err
	}
	// Repost on shortfall: no-show workers may leave the HIT under-
	// answered; republish the same questions for the missing assignment
	// count (a fresh HIT on the platform, as a requester would).
	if e.cfg.RepostShortfall {
		for round := 0; round < maxReposts && !res.TerminatedEarly && res.UsedWorkers < n; round++ {
			repostID := ""
			if job.hitID != "" {
				repostID = fmt.Sprintf("%s/repost-%d", job.hitID, round+1)
			}
			rerun, err := e.platform.Publish(crowd.HIT{
				ID:        repostID,
				Title:     e.cfg.JobName,
				Questions: questions,
			}, n-res.UsedWorkers)
			if err != nil {
				break // platform exhausted; proceed with what we have
			}
			res.Reposts++
			if err := consume(rerun); err != nil {
				return BatchResult{}, err
			}
		}
	}

	// Batch-only aggregators run once over everything collected; the
	// incremental ones already hold their verdicts in the folders.
	var batchOut aggregate.Result
	if !isInc {
		batch := aggregate.Batch{Votes: collected, MeanAccuracy: job.meanAcc}
		for id, q := range realIDs {
			batch.Questions = append(batch.Questions, aggregate.Question{ID: id, M: len(q.Domain)})
		}
		sort.Slice(batch.Questions, func(i, j int) bool { return batch.Questions[i].ID < batch.Questions[j].ID })
		out, err := e.agg.Aggregate(batch)
		if err != nil {
			return BatchResult{}, fmt.Errorf("engine: %w", err)
		}
		batchOut = out
	}
	for id, q := range realIDs {
		qr := QuestionResult{Question: q, Votes: len(collected[id])}
		var verdict aggregate.Verdict
		ok := false
		if isInc {
			if v, err := folders[id].Verdict(); err == nil {
				verdict, ok = v, true
			}
		} else {
			verdict, ok = batchOut.Verdicts[id]
		}
		if ok {
			qr.Answer = verdict.Answer
			qr.Confidence = verdict.Confidence
			qr.Ranked = verdict.Ranked
			agree := 0
			for _, v := range collected[id] {
				if v.Answer == verdict.Answer {
					agree++
				}
			}
			if qr.Votes > 0 {
				qr.Quality = float64(agree) / float64(qr.Votes)
			}
		}
		res.Results = append(res.Results, qr)
	}
	sortResults(res.Results)
	res.WorkerQuality = e.workerQuality(batchOut, res.Results, collected, isInc)
	if e.cfg.QualityFeedback {
		// Feed each worker's agreement with the accepted answers back
		// into the profile store, so vote weights improve online even
		// without golden questions. Iterate results in sorted order and
		// votes in arrival order — recording is order-sensitive only in
		// that it must be deterministic.
		for _, qr := range res.Results {
			if qr.Answer == "" {
				continue
			}
			for _, v := range collected[qr.Question.ID] {
				e.store.Record(e.cfg.JobName, v.Worker, v.Answer == qr.Answer)
			}
		}
	}
	return res, nil
}

// workerQuality assembles the per-HIT worker quality map: the batch
// aggregator's own estimate when it produced one, otherwise the share
// of each worker's votes agreeing with the accepted answers.
func (e *Engine) workerQuality(batchOut aggregate.Result, results []QuestionResult, collected map[string][]aggregate.Vote, isInc bool) map[string]float64 {
	if !isInc && batchOut.WorkerQuality != nil {
		return batchOut.WorkerQuality
	}
	agree := make(map[string]int)
	total := make(map[string]int)
	for _, qr := range results {
		if qr.Answer == "" {
			continue
		}
		for _, v := range collected[qr.Question.ID] {
			total[v.Worker]++
			if v.Answer == qr.Answer {
				agree[v.Worker]++
			}
		}
	}
	if len(total) == 0 {
		return nil
	}
	out := make(map[string]float64, len(total))
	for w, n := range total {
		out[w] = float64(agree[w]) / float64(n)
	}
	return out
}

// chunk splits real questions into HIT-sized batches (the per-HIT real
// slot count after golden injection).
func (e *Engine) chunk(real []crowd.Question) ([][]crowd.Question, error) {
	if len(real) == 0 {
		return nil, errors.New("engine: no questions to process")
	}
	perHIT := e.cfg.HITSize - sampling.GoldenCount(e.cfg.HITSize, e.cfg.SamplingRate)
	if perHIT <= 0 {
		return nil, fmt.Errorf("engine: sampling rate %v leaves no real slots", e.cfg.SamplingRate)
	}
	chunks := make([][]crowd.Question, 0, (len(real)+perHIT-1)/perHIT)
	for start := 0; start < len(real); start += perHIT {
		end := start + perHIT
		if end > len(real) {
			end = len(real)
		}
		chunks = append(chunks, real[start:end])
	}
	return chunks, nil
}

// ProcessAll chunks questions into HIT-sized batches and processes each.
// With MaxInflightHITs > 1 the batches run through the concurrent
// pipeline (see Stream); at the default of 1 they run strictly in
// sequence, re-reading the profile store between batches as the paper's
// offline mode does.
func (e *Engine) ProcessAll(real, golden []crowd.Question) ([]BatchResult, error) {
	if e.cfg.MaxInflightHITs > 1 {
		return e.ProcessAllContext(context.Background(), real, golden)
	}
	chunks, err := e.chunk(real)
	if err != nil {
		return nil, err
	}
	var out []BatchResult
	for _, qs := range chunks {
		br, err := e.ProcessBatch(qs, golden)
		if err != nil {
			return out, err
		}
		out = append(out, br)
	}
	return out, nil
}

// terminator is the optional early-termination face of a Folder. Only
// the CDAS model's folder implements it (the Section 4.2.2 bounds are
// specific to the probability model); folders without it never allow
// early termination.
type terminator interface {
	Terminated(online.Strategy) bool
}

func allTerminated(fs map[string]aggregate.Folder, s online.Strategy) bool {
	for _, f := range fs {
		t, ok := f.(terminator)
		if !ok || !t.Terminated(s) {
			return false
		}
	}
	return true
}

func sortResults(rs []QuestionResult) {
	// Deterministic output order by question ID.
	sort.Slice(rs, func(i, j int) bool { return rs[i].Question.ID < rs[j].Question.ID })
}
