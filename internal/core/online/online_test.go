package online

import (
	"math"
	"testing"

	"cdas/internal/core/verification"
)

func mustVerifier(t *testing.T, total, m int, mean float64) *Verifier {
	t.Helper()
	v, err := NewVerifier(total, m, mean)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func add(t *testing.T, v *Verifier, acc float64, answer string) {
	t.Helper()
	if err := v.Add(verification.Vote{Accuracy: acc, Answer: answer}); err != nil {
		t.Fatal(err)
	}
}

func TestNewVerifierValidation(t *testing.T) {
	cases := []struct {
		total, m int
		mean     float64
	}{
		{0, 3, 0.7}, {5, 1, 0.7}, {5, 3, 0}, {5, 3, 1}, {5, 3, math.NaN()},
	}
	for _, c := range cases {
		if _, err := NewVerifier(c.total, c.m, c.mean); err == nil {
			t.Errorf("NewVerifier(%d,%d,%v) should fail", c.total, c.m, c.mean)
		}
	}
	if _, err := NewVerifier(1, 2, 0.7); err != nil {
		t.Errorf("valid construction failed: %v", err)
	}
}

func TestAddOverfill(t *testing.T) {
	v := mustVerifier(t, 2, 3, 0.7)
	add(t, v, 0.7, "a")
	add(t, v, 0.7, "a")
	if err := v.Add(verification.Vote{Accuracy: 0.7, Answer: "a"}); err != ErrOverfilled {
		t.Errorf("err = %v, want ErrOverfilled", err)
	}
}

func TestReceivedRemaining(t *testing.T) {
	v := mustVerifier(t, 5, 3, 0.7)
	if v.Received() != 0 || v.Remaining() != 5 {
		t.Fatalf("fresh verifier: received=%d remaining=%d", v.Received(), v.Remaining())
	}
	add(t, v, 0.7, "a")
	add(t, v, 0.6, "b")
	if v.Received() != 2 || v.Remaining() != 3 {
		t.Errorf("received=%d remaining=%d, want 2/3", v.Received(), v.Remaining())
	}
}

func TestCurrentMatchesBatchVerification(t *testing.T) {
	// Theorem 6: partial confidence is just Equation 4 over the received
	// votes.
	v := mustVerifier(t, 10, 3, 0.7)
	votes := []verification.Vote{
		{Accuracy: 0.54, Answer: "pos"},
		{Accuracy: 0.73, Answer: "neg"},
		{Accuracy: 0.31, Answer: "pos"},
	}
	for _, vote := range votes {
		if err := v.Add(vote); err != nil {
			t.Fatal(err)
		}
	}
	got, err := v.Current()
	if err != nil {
		t.Fatal(err)
	}
	want, err := verification.Verify(votes, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range want.Ranked {
		if math.Abs(got.Confidence(s.Answer)-s.Confidence) > 1e-12 {
			t.Errorf("confidence(%s) online=%v batch=%v", s.Answer, got.Confidence(s.Answer), s.Confidence)
		}
	}
}

func TestNoVotesNotTerminated(t *testing.T) {
	v := mustVerifier(t, 5, 3, 0.7)
	for _, s := range append([]Strategy{Never}, Strategies...) {
		if v.Terminated(s) {
			t.Errorf("strategy %v terminated with no votes", s)
		}
	}
	if _, err := v.CurrentBounds(); err != ErrNoLeader {
		t.Errorf("CurrentBounds err = %v, want ErrNoLeader", err)
	}
}

func TestAllReceivedAlwaysTerminated(t *testing.T) {
	v := mustVerifier(t, 1, 3, 0.7)
	add(t, v, 0.7, "a")
	for _, s := range append([]Strategy{Never}, Strategies...) {
		if !v.Terminated(s) {
			t.Errorf("strategy %v not terminated after all answers", s)
		}
	}
}

func TestNeverStrategyWaitsForAll(t *testing.T) {
	v := mustVerifier(t, 10, 2, 0.7)
	for i := 0; i < 9; i++ {
		add(t, v, 0.99, "a") // overwhelming evidence
	}
	if v.Terminated(Never) {
		t.Error("Never must not terminate before all answers arrive")
	}
}

func TestOverwhelmingLeadTerminatesAll(t *testing.T) {
	// 25 of 30 high-accuracy unanimous votes: even the adversarial
	// completion of 5 cannot flip the result, so every strategy stops.
	v := mustVerifier(t, 30, 3, 0.7)
	for i := 0; i < 25; i++ {
		add(t, v, 0.9, "a")
	}
	for _, s := range Strategies {
		if !v.Terminated(s) {
			t.Errorf("strategy %v should terminate under an insurmountable lead", s)
		}
	}
}

func TestEarlyVotesDoNotTerminateMinMax(t *testing.T) {
	// 1 vote in, 29 outstanding: the adversary trivially overtakes.
	v := mustVerifier(t, 30, 3, 0.7)
	add(t, v, 0.9, "a")
	if v.Terminated(MinMax) {
		t.Error("MinMax terminated with 29 adversarial answers outstanding")
	}
	if v.Terminated(MinExp) {
		t.Error("MinExp terminated with 29 adversarial answers outstanding")
	}
}

func TestStrategyConservativeness(t *testing.T) {
	// MinMax's condition implies both MinExp's and ExpMax's:
	// MinBest <= ExpBest and ExpRunner <= MaxRunner always, so
	// MinMax terminated => MinExp terminated and ExpMax terminated.
	// Verify along a growing vote sequence.
	v := mustVerifier(t, 15, 3, 0.7)
	votes := []struct {
		acc float64
		ans string
	}{
		{0.8, "a"}, {0.6, "b"}, {0.9, "a"}, {0.7, "a"}, {0.55, "c"},
		{0.85, "a"}, {0.75, "a"}, {0.8, "a"}, {0.9, "a"}, {0.6, "a"},
	}
	for _, vt := range votes {
		add(t, v, vt.acc, vt.ans)
		b, err := v.CurrentBounds()
		if err != nil {
			t.Fatal(err)
		}
		if b.MinBest > b.ExpBest+1e-12 {
			t.Errorf("MinBest %v > ExpBest %v", b.MinBest, b.ExpBest)
		}
		if b.ExpRunner > b.MaxRunner+1e-12 {
			t.Errorf("ExpRunner %v > MaxRunner %v", b.ExpRunner, b.MaxRunner)
		}
		if v.Terminated(MinMax) {
			if !v.Terminated(MinExp) || !v.Terminated(ExpMax) {
				t.Error("MinMax fired but a less conservative strategy did not")
			}
		}
	}
}

func TestMinMaxStableUnderAdversarialCompletion(t *testing.T) {
	// Once MinMax fires, complete the HIT with the worst case (all
	// remaining vote the runner-up at mean accuracy): the final winner
	// must still be the leader at termination time.
	v := mustVerifier(t, 20, 3, 0.7)
	seq := []struct {
		acc float64
		ans string
	}{
		{0.9, "a"}, {0.85, "a"}, {0.8, "b"}, {0.9, "a"}, {0.88, "a"},
		{0.92, "a"}, {0.9, "a"}, {0.87, "a"}, {0.9, "a"}, {0.89, "a"},
		{0.91, "a"}, {0.9, "a"},
	}
	fired := false
	var leader string
	var firedAt int
	for i, vt := range seq {
		add(t, v, vt.acc, vt.ans)
		if v.Terminated(MinMax) {
			fired = true
			cur, err := v.Current()
			if err != nil {
				t.Fatal(err)
			}
			leader = cur.Best().Answer
			firedAt = i + 1
			break
		}
	}
	if !fired {
		t.Fatal("MinMax never fired in a lopsided sequence")
	}
	b, err := v.CurrentBounds()
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the adversarial completion explicitly.
	for v.Remaining() > 0 {
		add(t, v, 0.7, b.RunnerUp)
	}
	final, err := v.Current()
	if err != nil {
		t.Fatal(err)
	}
	if final.Best().Answer != leader {
		t.Errorf("MinMax fired at %d votes for %q but adversarial completion flipped to %q",
			firedAt, leader, final.Best().Answer)
	}
}

func TestSingleObservedAnswerCompetitorIsUnobserved(t *testing.T) {
	v := mustVerifier(t, 10, 3, 0.7)
	add(t, v, 0.8, "a")
	b, err := v.CurrentBounds()
	if err != nil {
		t.Fatal(err)
	}
	if b.RunnerUp != "" {
		t.Errorf("runner-up = %q, want unobserved (\"\")", b.RunnerUp)
	}
	if b.MaxRunner <= b.ExpRunner {
		t.Errorf("adversarial runner %v should exceed current %v", b.MaxRunner, b.ExpRunner)
	}
}

func TestBoundsProbabilitiesSane(t *testing.T) {
	v := mustVerifier(t, 10, 4, 0.7)
	add(t, v, 0.8, "a")
	add(t, v, 0.6, "b")
	add(t, v, 0.7, "a")
	b, err := v.CurrentBounds()
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]float64{
		"ExpBest": b.ExpBest, "ExpRunner": b.ExpRunner,
		"MinBest": b.MinBest, "MaxRunner": b.MaxRunner,
	} {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Errorf("%s = %v, want a probability", name, p)
		}
	}
	if b.Best != "a" || b.RunnerUp != "b" {
		t.Errorf("best/runner = %q/%q, want a/b", b.Best, b.RunnerUp)
	}
	if b.Received != 3 || b.Outstanding != 7 {
		t.Errorf("received/outstanding = %d/%d, want 3/7", b.Received, b.Outstanding)
	}
}

func TestVotesCopy(t *testing.T) {
	v := mustVerifier(t, 5, 3, 0.7)
	add(t, v, 0.8, "a")
	votes := v.Votes()
	votes[0].Answer = "tampered"
	cur, err := v.Current()
	if err != nil {
		t.Fatal(err)
	}
	if cur.Best().Answer != "a" {
		t.Error("Votes() must return a copy")
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		Never: "Never", MinMax: "MinMax", MinExp: "MinExp", ExpMax: "ExpMax",
		Strategy(42): "Strategy(42)",
	} {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(s), got, want)
		}
	}
}

func TestTerminationMonotoneInEvidence(t *testing.T) {
	// Adding another vote for the leader must not un-terminate ExpMax.
	v := mustVerifier(t, 30, 3, 0.7)
	terminated := false
	for i := 0; i < 30; i++ {
		add(t, v, 0.85, "a")
		now := v.Terminated(ExpMax)
		if terminated && !now {
			t.Fatalf("ExpMax regressed at vote %d", i+1)
		}
		terminated = now
	}
}
