package prediction

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func mustModel(t *testing.T, mu float64) *Model {
	t.Helper()
	m, err := New(mu)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	for _, mu := range []float64{0.5, 0.3, 0, -1, 1.1, math.NaN()} {
		if _, err := New(mu); !errors.Is(err, ErrMeanNotInformative) {
			t.Errorf("New(%v) err = %v, want ErrMeanNotInformative", mu, err)
		}
	}
	if _, err := New(0.75); err != nil {
		t.Errorf("New(0.75) err = %v", err)
	}
	if _, err := New(1.0); err != nil {
		t.Errorf("New(1.0) err = %v (perfect workers are legal)", err)
	}
}

func TestRequiredAccuracyValidation(t *testing.T) {
	m := mustModel(t, 0.75)
	for _, c := range []float64{0, 1, -0.5, 2, math.NaN()} {
		if _, err := m.RequiredWorkers(c); !errors.Is(err, ErrAccuracyOutOfRange) {
			t.Errorf("RequiredWorkers(%v) err = %v, want ErrAccuracyOutOfRange", c, err)
		}
		if _, err := m.ConservativeWorkers(c); !errors.Is(err, ErrAccuracyOutOfRange) {
			t.Errorf("ConservativeWorkers(%v) err = %v, want ErrAccuracyOutOfRange", c, err)
		}
	}
}

func TestConservativeMeetsChernoffBound(t *testing.T) {
	for _, mu := range []float64{0.6, 0.7, 0.75, 0.85, 0.95} {
		m := mustModel(t, mu)
		for c := 0.65; c < 0.995; c += 0.02 {
			n, err := m.ConservativeWorkers(c)
			if err != nil {
				t.Fatal(err)
			}
			if n%2 != 1 {
				t.Fatalf("mu=%v C=%v: conservative n=%d is even", mu, c, n)
			}
			if got := m.ChernoffBound(n); got < c {
				t.Errorf("mu=%v C=%v: Chernoff(%d) = %v < C", mu, c, n, got)
			}
		}
	}
}

func TestRequiredWorkersIsMinimalOdd(t *testing.T) {
	for _, mu := range []float64{0.6, 0.7, 0.8} {
		m := mustModel(t, mu)
		for c := 0.65; c < 0.99; c += 0.05 {
			n, err := m.RequiredWorkers(c)
			if err != nil {
				t.Fatal(err)
			}
			if n%2 != 1 {
				t.Fatalf("n=%d is even", n)
			}
			if got := m.ExpectedAccuracy(n); got < c {
				t.Errorf("mu=%v C=%v: E[P](%d) = %v < C", mu, c, n, got)
			}
			if n > 2 {
				if got := m.ExpectedAccuracy(n - 2); got >= c {
					t.Errorf("mu=%v C=%v: n=%d not minimal, %d already gives %v", mu, c, n, n-2, got)
				}
			}
		}
	}
}

func TestRefinedNeverExceedsConservative(t *testing.T) {
	// Figure 6's claim, as a property over random (mu, C).
	f := func(muRaw, cRaw float64) bool {
		mu := 0.55 + math.Abs(math.Mod(muRaw, 0.40)) // (0.55, 0.95)
		c := 0.55 + math.Abs(math.Mod(cRaw, 0.44))   // (0.55, 0.99)
		m, err := New(mu)
		if err != nil {
			return false
		}
		cons, err1 := m.ConservativeWorkers(c)
		ref, err2 := m.RequiredWorkers(c)
		if err1 != nil || err2 != nil {
			return false
		}
		return ref <= cons
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRequiredWorkersMonotoneInC(t *testing.T) {
	m := mustModel(t, 0.7)
	prev := 0
	for c := 0.55; c < 0.995; c += 0.01 {
		n, err := m.RequiredWorkers(c)
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Fatalf("RequiredWorkers not monotone at C=%v: %d after %d", c, n, prev)
		}
		prev = n
	}
}

func TestRequiredWorkersDecreasesWithBetterWorkers(t *testing.T) {
	c := 0.95
	prev := math.MaxInt
	for _, mu := range []float64{0.55, 0.6, 0.7, 0.8, 0.9, 0.99} {
		m := mustModel(t, mu)
		n, err := m.RequiredWorkers(c)
		if err != nil {
			t.Fatal(err)
		}
		if n > prev {
			t.Fatalf("more accurate workers needed more heads: mu=%v n=%d prev=%d", mu, n, prev)
		}
		prev = n
	}
}

func TestRequiredWorkersKnownValues(t *testing.T) {
	// mu=0.7: E[P](1)=0.7, E[P](3)=0.784, E[P](5)=0.837, E[P](7)=0.874.
	m := mustModel(t, 0.7)
	// Note 0.70 itself is avoided: E[P](1) is computed through logs and
	// lands at 0.69999999999999996, putting exact equality on a
	// floating-point knife edge.
	cases := []struct {
		c    float64
		want int
	}{
		{0.69, 1}, {0.699, 1}, {0.75, 3}, {0.80, 5}, {0.85, 7},
	}
	for _, tc := range cases {
		got, err := m.RequiredWorkers(tc.c)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("RequiredWorkers(%v) = %d, want %d", tc.c, got, tc.want)
		}
	}
}

func TestExpectedAccuracyMatchesHandComputation(t *testing.T) {
	m := mustModel(t, 0.7)
	// n=3: 3*0.49*0.3 + 0.343 = 0.784
	if got := m.ExpectedAccuracy(3); math.Abs(got-0.784) > 1e-12 {
		t.Errorf("E[P](3) = %v, want 0.784", got)
	}
}

func TestWorkersForPanicsOnBadC(t *testing.T) {
	m := mustModel(t, 0.7)
	defer func() {
		if recover() == nil {
			t.Error("WorkersFor(1.5) should panic")
		}
	}()
	m.WorkersFor(1.5)
}

func TestWorkersForConvenience(t *testing.T) {
	m := mustModel(t, 0.7)
	if got := m.WorkersFor(0.75); got != 3 {
		t.Errorf("WorkersFor(0.75) = %d, want 3", got)
	}
}

func TestHighAccuracyRequirementIsFinite(t *testing.T) {
	// C = 0.9999 with mediocre workers must still terminate with a sane n.
	m := mustModel(t, 0.65)
	n, err := m.RequiredWorkers(0.9999)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 || n > 1001 {
		t.Errorf("RequiredWorkers(0.9999) = %d, out of sane range", n)
	}
	if got := m.ExpectedAccuracy(n); got < 0.9999 {
		t.Errorf("E[P](%d) = %v < 0.9999", n, got)
	}
}
