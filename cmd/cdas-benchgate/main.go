// Command cdas-benchgate is the CI bench-regression gate: it compares
// fresh benchmark results against the committed BENCH_*.json baselines
// and fails (exit 1) on any regression beyond the tolerance.
//
// Two comparison modes, combinable in one invocation:
//
//	cdas-benchgate -baseline BENCH_scheduler.json -bench fresh-bench.txt
//	cdas-benchgate -e2e-baseline BENCH_e2e.json -e2e fresh-e2e.json
//
// -bench consumes `go test -bench` output (a file, or - for stdin) and
// gates ns/op (must not exceed baseline by more than -tolerance) and
// the questions/s metric (must not fall below by more than -tolerance).
// -e2e consumes cdas-loadgen reports and additionally pins the
// deterministic profiles' aggregate spend and results hash exactly —
// those are reproducibility guarantees, not measurements, so no
// tolerance excuses a mismatch.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cdas/internal/loadgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cdas-benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "", "committed benchmark baseline (cdas-bench/v1 JSON)")
		benchPath    = fs.String("bench", "", "fresh `go test -bench` output (path or - for stdin)")
		e2eBasePath  = fs.String("e2e-baseline", "", "committed loadgen report baseline (cdas-loadgen/v1 JSON)")
		e2ePath      = fs.String("e2e", "", "fresh loadgen report")
		tolerance    = fs.Float64("tolerance", 0.30, "allowed relative regression")
		emit         = fs.String("emit", "", "write a fresh baseline built from -bench here (regeneration mode; no comparison unless -baseline is also given)")
		benchtime    = fs.String("benchtime", "", "benchtime recorded in the emitted baseline")
		notes        = fs.String("notes", "", "notes recorded in the emitted baseline")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *benchPath == "" && (*baselinePath != "" || *emit != "") {
		fmt.Fprintln(stderr, "cdas-benchgate: -baseline/-emit need -bench input")
		return 1
	}
	if (*e2eBasePath == "") != (*e2ePath == "") {
		fmt.Fprintln(stderr, "cdas-benchgate: -e2e-baseline and -e2e must be given together")
		return 1
	}
	if *baselinePath == "" && *e2eBasePath == "" && *emit == "" {
		fmt.Fprintln(stderr, "cdas-benchgate: nothing to do (see -h)")
		return 1
	}

	var violations []string
	if *benchPath != "" {
		var r io.Reader = os.Stdin
		if *benchPath != "-" {
			f, err := os.Open(*benchPath)
			if err != nil {
				fmt.Fprintf(stderr, "cdas-benchgate: %v\n", err)
				return 1
			}
			defer f.Close()
			r = f
		}
		fresh, err := loadgen.ParseBenchRun(r)
		if err != nil {
			fmt.Fprintf(stderr, "cdas-benchgate: %v\n", err)
			return 1
		}
		if *emit != "" {
			if err := loadgen.NewBenchBaseline(fresh, *benchtime, *notes).WriteJSON(*emit); err != nil {
				fmt.Fprintf(stderr, "cdas-benchgate: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "baseline with %d benchmark(s) written to %s\n", len(fresh.Benchmarks), *emit)
		}
		if *baselinePath != "" {
			base, err := loadgen.LoadBenchBaseline(*baselinePath)
			if err != nil {
				fmt.Fprintf(stderr, "cdas-benchgate: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "bench gate: %d baseline benchmark(s) vs %s (tolerance ±%.0f%%)\n",
				len(base.Benchmarks), *benchPath, 100**tolerance)
			// Absolute ns/op and questions/s only compare meaningfully on
			// the hardware class the baseline was recorded on; flag any
			// drift loudly so a violation (or a suspicious pass) can be
			// read in context, and so baseline regeneration gets prompted.
			for _, w := range base.EnvMismatch(fresh) {
				fmt.Fprintf(stderr, "cdas-benchgate: warning: %s — regenerate the baseline on this machine class if the numbers drifted (see the baseline's notes field)\n", w)
			}
			violations = append(violations, loadgen.CompareBench(base, fresh.Benchmarks, *tolerance)...)
		}
	}
	if *e2eBasePath != "" {
		base, err := loadgen.LoadReport(*e2eBasePath)
		if err != nil {
			fmt.Fprintf(stderr, "cdas-benchgate: %v\n", err)
			return 1
		}
		fresh, err := loadgen.LoadReport(*e2ePath)
		if err != nil {
			fmt.Fprintf(stderr, "cdas-benchgate: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "e2e gate: profile %s vs %s (tolerance ±%.0f%%)\n",
			base.Profile.Name, *e2ePath, 100**tolerance)
		violations = append(violations, loadgen.CompareE2E(base, fresh, *tolerance)...)
	}
	if len(violations) > 0 {
		fmt.Fprintf(stderr, "cdas-benchgate: %d regression(s):\n", len(violations))
		for _, v := range violations {
			fmt.Fprintf(stderr, "  - %s\n", v)
		}
		return 1
	}
	if *baselinePath != "" || *e2eBasePath != "" {
		fmt.Fprintln(stdout, "bench gate passed: no regressions beyond tolerance")
	}
	return 0
}
