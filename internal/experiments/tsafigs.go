package experiments

import (
	"fmt"
	"sort"

	"cdas/internal/core/online"
	"cdas/internal/core/prediction"
	"cdas/internal/core/verification"
	"cdas/internal/crowd"
	"cdas/internal/stats"
	"cdas/internal/svm"
	"cdas/internal/textgen"
	"cdas/internal/tsa"
)

// Table4 reproduces the worked example of Tables 3 and 4: five workers
// with fixed accuracies, three verification models, and the
// probability-based model overturning the vote.
func Table4(uint64) (Table, error) {
	votes := []verification.Vote{
		{Worker: "w1", Accuracy: 0.54, Answer: "pos"},
		{Worker: "w2", Accuracy: 0.31, Answer: "pos"},
		{Worker: "w3", Accuracy: 0.49, Answer: "neu"},
		{Worker: "w4", Accuracy: 0.73, Answer: "neg"},
		{Worker: "w5", Accuracy: 0.46, Answer: "pos"},
	}
	res, err := verification.Verify(votes, 3)
	if err != nil {
		return Table{}, err
	}
	half, okHalf := verification.HalfVoting(votes)
	maj, okMaj := verification.MajorityVoting(votes)
	noAnswer := func(a string, ok bool) string {
		if !ok {
			return "(none)"
		}
		return a
	}
	counts := verification.VoteCounts(votes)
	return Table{
		ID:      "table4",
		Title:   "Results of verification models on the Green Lantern example",
		Columns: []string{"model", "pos", "neu", "neg", "answer"},
		Rows: [][]string{
			{"Half-Voting", fmt.Sprint(counts["pos"]), fmt.Sprint(counts["neu"]), fmt.Sprint(counts["neg"]), noAnswer(half, okHalf)},
			{"Majority-Voting", fmt.Sprint(counts["pos"]), fmt.Sprint(counts["neu"]), fmt.Sprint(counts["neg"]), noAnswer(maj, okMaj)},
			{"Verification", fmtF(res.Confidence("pos")), fmtF(res.Confidence("neu")), fmtF(res.Confidence("neg")), res.Best().Answer},
		},
		Notes: "paper reports pos 0.329 / neu 0.176 / neg 0.495 and picks neg",
	}, nil
}

// Figure5 compares crowdsourcing accuracy (1/3/5 workers, verification
// model) with the linear-SVM baseline on the five held-out movies, 200
// tweets each (the paper's protocol: train on the other 195 movies).
func Figure5(seed uint64) (Table, error) {
	// Train the baseline on the non-test movies. A 55-movie subsample of
	// the paper's 195 keeps bench times tractable; the classifier's
	// ceiling is set by the irreducibly ambiguous tweets, not corpus
	// size.
	trainTweets, err := textgen.Generate(textgen.Config{
		Seed:           seed,
		Movies:         textgen.Movies200()[5:60],
		TweetsPerMovie: 40,
	})
	if err != nil {
		return Table{}, err
	}
	trainDocs, trainLabels := tsa.Corpus(trainTweets)
	model, err := svm.Train(trainDocs, trainLabels, svm.Options{Seed: seed + 1, Epochs: 8})
	if err != nil {
		return Table{}, err
	}

	testTweets, err := textgen.Generate(textgen.Config{
		Seed:           seed + 2,
		Movies:         textgen.Figure5Movies,
		TweetsPerMovie: 200,
	})
	if err != nil {
		return Table{}, err
	}
	platform, err := newPlatform(seed+3, 300)
	if err != nil {
		return Table{}, err
	}
	_, golden, err := tsaWorkload(seed+4, []string{"Calibration Feature"}, 1, 40)
	if err != nil {
		return Table{}, err
	}
	byMovie := make(map[string][]textgen.Tweet)
	for _, t := range testTweets {
		byMovie[t.Movie] = append(byMovie[t.Movie], t)
	}

	tbl := Table{
		ID:      "fig5",
		Title:   "Crowdsourcing vs SVM accuracy per movie (200-tweet queries)",
		Columns: []string{"movie", "LIBSVM", "TSA 1 worker", "TSA 3 workers", "TSA 5 workers"},
		Notes:   "crowdsourcing should beat the SVM on every movie, clearly so from 3 workers",
	}
	const hitSize = 50 // tweets per HIT: "1 worker" averages 4 workers/movie
	for _, movie := range textgen.Figure5Movies {
		tweets := byMovie[movie]
		docs, labels := tsa.Corpus(tweets)
		svmAcc, err := model.Accuracy(docs, labels)
		if err != nil {
			return Table{}, err
		}
		row := []string{movie, fmtF(svmAcc)}
		for _, nWorkers := range []int{1, 3, 5} {
			correctSum, total := 0.0, 0
			for start := 0; start < len(tweets); start += hitSize {
				end := min(start+hitSize, len(tweets))
				chunk := tsa.Questions(tweets[start:end])
				c, err := collect(platform, chunk, golden, 5)
				if err != nil {
					return Table{}, err
				}
				acc, _ := c.evalPrefix(modelVerification, nWorkers, c.estAcc)
				correctSum += acc * float64(end-start)
				total += end - start
			}
			row = append(row, fmtF(correctSum/float64(total)))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}

// Figure6 compares the conservative (Chernoff) worker estimate with the
// binary-search refinement across required accuracies.
func Figure6(uint64) (Table, error) {
	const mu = 0.65 // matches the paper's ~115-worker conservative peak
	model, err := prediction.New(mu)
	if err != nil {
		return Table{}, err
	}
	tbl := Table{
		ID:      "fig6",
		Title:   fmt.Sprintf("Workers needed: conservative vs binary search (mu=%.2f)", mu),
		Columns: []string{"required accuracy", "conservative", "binary search"},
		Notes:   "refined estimate should be less than half the conservative one",
	}
	for c := 0.65; c <= 0.992; c += 0.02 {
		cons, err := model.ConservativeWorkers(c)
		if err != nil {
			return Table{}, err
		}
		ref, err := model.RequiredWorkers(c)
		if err != nil {
			return Table{}, err
		}
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprintf("%.2f", c), fmt.Sprint(cons), fmt.Sprint(ref)})
	}
	return tbl, nil
}

// fig7Setup collects one 29-worker run over a 200-question TSA workload.
func fig7Setup(seed uint64) (*collected, error) {
	questions, golden, err := tsaWorkload(seed, mustNoHardMovies(), 67, 50)
	if err != nil {
		return nil, err
	}
	platform, err := newPlatform(seed+1, 300)
	if err != nil {
		return nil, err
	}
	return collect(platform, questions[:200], golden, 29)
}

// Figure7 measures real accuracy of the three verification models as the
// worker count grows from 1 to 29.
func Figure7(seed uint64) (Table, error) {
	c, err := fig7Setup(seed)
	if err != nil {
		return Table{}, err
	}
	tbl := Table{
		ID:      "fig7",
		Title:   "Real accuracy vs number of workers (200 tweets)",
		Columns: []string{"workers", "Majority-Voting", "Half-Voting", "Verification"},
		Notes:   "verification dominates; all models improve with more workers",
	}
	for n := 1; n <= 29; n += 2 {
		majAcc, _ := c.evalPrefix(modelMajority, n, c.estAcc)
		halfAcc, _ := c.evalPrefix(modelHalf, n, c.estAcc)
		verAcc, _ := c.evalPrefix(modelVerification, n, c.estAcc)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(n), fmtF(majAcc), fmtF(halfAcc), fmtF(verAcc),
		})
	}
	return tbl, nil
}

// Figure8 measures real accuracy against the user-required accuracy: the
// engine plans n per C, then each model is evaluated at that n.
func Figure8(seed uint64) (Table, error) {
	questions, golden, err := tsaWorkload(seed, mustNoHardMovies(), 67, 50)
	if err != nil {
		return Table{}, err
	}
	platform, err := newPlatform(seed+1, 300)
	if err != nil {
		return Table{}, err
	}
	// Collect once at a generous n; prefixes give the per-C plans. The
	// prediction model plans with the SAMPLED mean accuracy, which
	// reflects effective (difficulty-inclusive) worker accuracy.
	const maxN = 41
	c, err := collect(platform, questions[:200], golden, maxN)
	if err != nil {
		return Table{}, err
	}
	mu := stats.ClampProb(c.muEst)
	model, err := prediction.New(mu)
	if err != nil {
		return Table{}, err
	}
	tbl := Table{
		ID:      "fig8",
		Title:   fmt.Sprintf("Real accuracy vs required accuracy (planned with sampled mu=%.3f)", mu),
		Columns: []string{"required", "planned workers", "Majority-Voting", "Half-Voting", "Verification"},
		Notes:   "verification meets the requirement; voting models fall below on hard tweets",
	}
	for req := 0.65; req <= 0.951; req += 0.05 {
		n, err := model.RequiredWorkers(req)
		if err != nil {
			return Table{}, err
		}
		if n > maxN {
			n = maxN
		}
		// Windowed evaluation: the paper's numbers average over many
		// HITs, each answered by its own random workers.
		majAcc, _ := c.evalWindows(modelMajority, n, c.estAcc)
		halfAcc, _ := c.evalWindows(modelHalf, n, c.estAcc)
		verAcc, _ := c.evalWindows(modelVerification, n, c.estAcc)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.2f", req), fmt.Sprint(n), fmtF(majAcc), fmtF(halfAcc), fmtF(verAcc),
		})
	}
	return tbl, nil
}

// Figure9 measures the no-answer ratio of the voting models as the worker
// count grows.
func Figure9(seed uint64) (Table, error) {
	c, err := fig7Setup(seed)
	if err != nil {
		return Table{}, err
	}
	tbl := Table{
		ID:      "fig9",
		Title:   "No-answer ratio vs number of workers",
		Columns: []string{"workers", "Majority-Voting", "Half-Voting"},
		Notes:   "majority ties dissolve with more workers; half-voting plateaus ~15%",
	}
	for n := 1; n <= 29; n += 2 {
		_, majNo := c.evalPrefix(modelMajority, n, c.estAcc)
		_, halfNo := c.evalPrefix(modelHalf, n, c.estAcc)
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprint(n), fmtPct(majNo), fmtPct(halfNo)})
	}
	return tbl, nil
}

// Figure10 measures the no-answer ratio as the number of reviews grows,
// with 5 workers: the ratio should be flat (non-discriminative reviews
// are uniformly spread).
func Figure10(seed uint64) (Table, error) {
	questions, golden, err := tsaWorkload(seed, mustNoHardMovies(), 100, 50)
	if err != nil {
		return Table{}, err
	}
	platform, err := newPlatform(seed+1, 300)
	if err != nil {
		return Table{}, err
	}
	c, err := collect(platform, questions[:300], golden, 5)
	if err != nil {
		return Table{}, err
	}
	tbl := Table{
		ID:      "fig10",
		Title:   "No-answer ratio vs number of reviews (5 workers)",
		Columns: []string{"reviews", "Majority-Voting", "Half-Voting"},
		Notes:   "ratios stay flat as the review count grows",
	}
	for count := 20; count <= 300; count += 40 {
		sub := &collected{
			questions:   c.questions[:count],
			golden:      c.golden,
			assignments: c.assignments,
			estAcc:      c.estAcc,
			muEst:       c.muEst,
		}
		_, majNo := sub.evalPrefix(modelMajority, 5, c.estAcc)
		_, halfNo := sub.evalPrefix(modelHalf, 5, c.estAcc)
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprint(count), fmtPct(majNo), fmtPct(halfNo)})
	}
	return tbl, nil
}

// Figure11 replays the same HIT under four different answer-arrival
// sequences and reports the running accuracy of the verification model.
func Figure11(seed uint64) (Table, error) {
	questions, golden, err := tsaWorkload(seed, mustNoHardMovies(), 20, 50)
	if err != nil {
		return Table{}, err
	}
	platform, err := newPlatform(seed+1, 300)
	if err != nil {
		return Table{}, err
	}
	c, err := collect(platform, questions[:50], golden, 30)
	if err != nil {
		return Table{}, err
	}

	// Four arrival orders over the same assignments: natural, accurate
	// workers first, inaccurate workers first, and reversed-natural.
	natural := c.assignments
	byAccAsc := append([]crowd.Assignment(nil), natural...)
	sort.SliceStable(byAccAsc, func(i, j int) bool {
		return c.estAcc[byAccAsc[i].Worker.ID] < c.estAcc[byAccAsc[j].Worker.ID]
	})
	byAccDesc := append([]crowd.Assignment(nil), natural...)
	sort.SliceStable(byAccDesc, func(i, j int) bool {
		return c.estAcc[byAccDesc[i].Worker.ID] > c.estAcc[byAccDesc[j].Worker.ID]
	})
	reversed := make([]crowd.Assignment, len(natural))
	for i, a := range natural {
		reversed[len(natural)-1-i] = a
	}
	sequences := [][]crowd.Assignment{natural, byAccDesc, reversed, byAccAsc}

	tbl := Table{
		ID:      "fig11",
		Title:   "Running accuracy vs answers arrived, four arrival sequences",
		Columns: []string{"answers", "seq1 (natural)", "seq2 (best first)", "seq3 (reversed)", "seq4 (worst first)"},
		Notes:   "early accuracy varies wildly with arrival order; all converge",
	}
	for arrived := 2; arrived <= 30; arrived += 2 {
		row := []string{fmt.Sprint(arrived)}
		for _, seq := range sequences {
			sub := &collected{
				questions:   c.questions,
				golden:      c.golden,
				assignments: seq,
				estAcc:      c.estAcc,
				muEst:       c.muEst,
			}
			acc, _ := sub.evalPrefix(modelVerification, arrived, c.estAcc)
			row = append(row, fmtF(acc))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}

// earlyTermination runs the three strategies for each required accuracy,
// returning (workers used, accuracy) per strategy.
func earlyTermination(seed uint64) (*Table, *Table, error) {
	questions, golden, err := tsaWorkload(seed, mustNoHardMovies(), 67, 50)
	if err != nil {
		return nil, nil, err
	}
	platform, err := newPlatform(seed+1, 300)
	if err != nil {
		return nil, nil, err
	}
	const maxN = 41
	c, err := collect(platform, questions[:150], golden, maxN)
	if err != nil {
		return nil, nil, err
	}
	model, err := prediction.New(stats.ClampProb(c.muEst))
	if err != nil {
		return nil, nil, err
	}

	workers := &Table{
		ID:      "fig12",
		Title:   "Early termination: average workers used vs required accuracy",
		Columns: []string{"required", "planned", "MinExp", "MinMax", "ExpMax"},
		Notes:   "MinMax saves >=20% of workers; ExpMax saves the most",
	}
	accs := &Table{
		ID:      "fig13",
		Title:   "Early termination: real accuracy vs required accuracy",
		Columns: []string{"required", "MinExp", "MinMax", "ExpMax"},
		Notes:   "MinMax and ExpMax stay above the requirement; MinExp may dip",
	}
	strategies := []online.Strategy{online.MinExp, online.MinMax, online.ExpMax}
	for req := 0.65; req <= 0.951; req += 0.05 {
		n, err := model.RequiredWorkers(req)
		if err != nil {
			return nil, nil, err
		}
		if n > maxN {
			n = maxN
		}
		usedRow := []string{fmt.Sprintf("%.2f", req), fmt.Sprint(n)}
		accRow := []string{fmt.Sprintf("%.2f", req)}
		// Average over disjoint worker windows so a single weak
		// first-arrival does not taint every question at small n (the
		// paper averages over many HITs with different workers).
		windows := min(len(c.assignments)/n, 8)
		if windows == 0 {
			windows = 1
		}
		for _, s := range strategies {
			totalUsed, correct, trials := 0, 0, 0
			for w := 0; w < windows; w++ {
				for _, q := range c.questions {
					oc, err := c.runOnline(q, s, n, w*n)
					if err != nil {
						return nil, nil, err
					}
					totalUsed += oc.used
					trials++
					if oc.correct {
						correct++
					}
				}
			}
			avgUsed := float64(totalUsed) / float64(trials)
			acc := float64(correct) / float64(trials)
			usedRow = append(usedRow, fmt.Sprintf("%.1f", avgUsed))
			accRow = append(accRow, fmtF(acc))
		}
		workers.Rows = append(workers.Rows, usedRow)
		accs.Rows = append(accs.Rows, accRow)
	}
	return workers, accs, nil
}

// Figure12 reports the worker savings of the termination strategies.
func Figure12(seed uint64) (Table, error) {
	w, _, err := earlyTermination(seed)
	if err != nil {
		return Table{}, err
	}
	return *w, nil
}

// Figure13 reports the accuracy kept by the termination strategies.
func Figure13(seed uint64) (Table, error) {
	_, a, err := earlyTermination(seed)
	if err != nil {
		return Table{}, err
	}
	return *a, nil
}
