package experiments

import (
	"cdas/internal/core/online"
	"cdas/internal/core/verification"
	"cdas/internal/crowd"
	"cdas/internal/stats"
	"cdas/internal/textgen"
)

// collected holds one HIT's full assignment stream plus golden-based
// worker-accuracy estimates — the raw material most figures slice in
// different ways (vote prefixes, arrival permutations, sampling rates).
type collected struct {
	questions []crowd.Question
	golden    []crowd.Question
	// assignments in arrival order.
	assignments []crowd.Assignment
	// estAcc[workerID] is the golden-estimated accuracy (full sampling).
	estAcc map[string]float64
	// muEst is the mean of estAcc — the engine's view of μ.
	muEst float64
}

// collect publishes questions+golden as one HIT answered by n workers and
// estimates every worker's accuracy from the golden answers.
func collect(p *crowd.Platform, questions, golden []crowd.Question, n int) (*collected, error) {
	all := make([]crowd.Question, 0, len(questions)+len(golden))
	all = append(all, questions...)
	all = append(all, golden...)
	run, err := p.Publish(crowd.HIT{Questions: all}, n)
	if err != nil {
		return nil, err
	}
	c := &collected{
		questions:   questions,
		golden:      golden,
		assignments: run.Drain(),
		estAcc:      make(map[string]float64, n),
	}
	sum := 0.0
	for _, a := range c.assignments {
		acc := c.estimateWith(a, len(golden))
		c.estAcc[a.Worker.ID] = acc
		sum += acc
	}
	if len(c.assignments) > 0 {
		c.muEst = sum / float64(len(c.assignments))
	}
	return c, nil
}

// estimateWith scores an assignment on the first g golden questions
// (g = len(golden) is full sampling; smaller g simulates lower rates).
func (c *collected) estimateWith(a crowd.Assignment, g int) float64 {
	if g > len(c.golden) {
		g = len(c.golden)
	}
	if g == 0 {
		return 0.5
	}
	correct := 0
	for _, q := range c.golden[:g] {
		if a.AnswerTo(q.ID) == q.Truth {
			correct++
		}
	}
	return float64(correct) / float64(g)
}

// votesFor builds the vote list of one question over the first nPrefix
// assignments, weighting workers with the estimator accuracies in accs
// (pass c.estAcc for full sampling).
func (c *collected) votesFor(q crowd.Question, nPrefix int, accs map[string]float64) []verification.Vote {
	if nPrefix > len(c.assignments) {
		nPrefix = len(c.assignments)
	}
	votes := make([]verification.Vote, 0, nPrefix)
	for _, a := range c.assignments[:nPrefix] {
		votes = append(votes, verification.Vote{
			Worker:   a.Worker.ID,
			Accuracy: accs[a.Worker.ID],
			Answer:   a.AnswerTo(q.ID),
		})
	}
	return votes
}

// model identifies a verification approach under comparison.
type model int

const (
	modelHalf model = iota
	modelMajority
	modelVerification
)

// evalPrefix measures a model over all questions using the first nPrefix
// assignments: the fraction answered correctly (no-answer counts as
// incorrect) and the no-answer ratio.
func (c *collected) evalPrefix(m model, nPrefix int, accs map[string]float64) (accuracy, noAnswer float64) {
	if len(c.questions) == 0 {
		return 0, 0
	}
	correct, none := 0, 0
	for _, q := range c.questions {
		votes := c.votesFor(q, nPrefix, accs)
		var answer string
		var ok bool
		switch m {
		case modelHalf:
			answer, ok = verification.HalfVoting(votes)
		case modelMajority:
			answer, ok = verification.MajorityVoting(votes)
		default:
			res, err := verification.Verify(votes, len(q.Domain))
			if err == nil {
				answer, ok = res.Best().Answer, true
			}
		}
		if !ok {
			none++
			continue
		}
		if answer == q.Truth {
			correct++
		}
	}
	n := float64(len(c.questions))
	return float64(correct) / n, float64(none) / n
}

// evalWindows measures a model like evalPrefix but averages over all
// disjoint n-sized windows of the assignment stream instead of using only
// the first n arrivals — smoothing out single-worker variance for small n
// (the paper averages over many HITs, each with its own workers).
func (c *collected) evalWindows(m model, n int, accs map[string]float64) (accuracy, noAnswer float64) {
	windows := len(c.assignments) / n
	if windows == 0 {
		return c.evalPrefix(m, n, accs)
	}
	var accSum, noSum float64
	for w := 0; w < windows; w++ {
		sub := &collected{
			questions:   c.questions,
			golden:      c.golden,
			assignments: c.assignments[w*n : (w+1)*n],
			estAcc:      c.estAcc,
			muEst:       c.muEst,
		}
		a, no := sub.evalPrefix(m, n, accs)
		accSum += a
		noSum += no
	}
	return accSum / float64(windows), noSum / float64(windows)
}

// onlineOutcome reports one question's early-termination result.
type onlineOutcome struct {
	used    int
	correct bool
}

// runOnline replays one question's votes through an online verifier with
// the given termination strategy, using the total assignments starting at
// offset, returning the workers consumed and the correctness of the
// accepted answer.
func (c *collected) runOnline(q crowd.Question, strategy online.Strategy, total, offset int) (onlineOutcome, error) {
	v, err := online.NewVerifier(total, len(q.Domain), stats.ClampProb(c.muEst))
	if err != nil {
		return onlineOutcome{}, err
	}
	used := 0
	window := c.assignments[offset:]
	for _, a := range window[:min(total, len(window))] {
		if err := v.Add(verification.Vote{
			Worker:   a.Worker.ID,
			Accuracy: c.estAcc[a.Worker.ID],
			Answer:   a.AnswerTo(q.ID),
		}); err != nil {
			return onlineOutcome{}, err
		}
		used++
		if v.Terminated(strategy) {
			break
		}
	}
	cur, err := v.Current()
	if err != nil {
		return onlineOutcome{}, err
	}
	return onlineOutcome{used: used, correct: cur.Best().Answer == q.Truth}, nil
}

// tsaWorkload generates a deterministic TSA question set plus golden pool.
func tsaWorkload(seed uint64, movies []string, perMovie, goldenCount int) (questions, golden []crowd.Question, err error) {
	tweets, err := textgen.Generate(textgen.Config{
		Seed:           seed,
		Movies:         movies,
		TweetsPerMovie: perMovie,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, t := range tweets {
		questions = append(questions, t.Question())
	}
	// Golden questions are drawn from the same distribution as the live
	// tweets (the paper injects verified samples of the same stream), so
	// sampled accuracies reflect workers' EFFECTIVE accuracy on this
	// workload — difficulty included — which is what the prediction
	// model's μ must capture.
	goldTweets, err := textgen.Generate(textgen.Config{
		Seed:           seed + 1,
		Movies:         []string{"The Golden Benchmark"},
		TweetsPerMovie: goldenCount,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, t := range goldTweets {
		q := t.Question()
		q.ID = "golden/" + q.ID
		golden = append(golden, q)
	}
	return questions, golden, nil
}

// newPlatform builds the default experiment platform.
func newPlatform(seed uint64, workers int) (*crowd.Platform, error) {
	cfg := crowd.DefaultConfig(seed)
	if workers > 0 {
		cfg.Workers = workers
	}
	return crowd.NewPlatform(cfg)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func mustNoHardMovies() []string {
	return []string{"Thor", "Roommate", "District 9"}
}
