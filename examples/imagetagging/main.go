// Imagetagging: the paper's second application — workers choose the
// correct tag for Flickr-style images; the verification model aggregates
// their votes; the ALIPR-like automatic annotator shows the machine
// baseline it outperforms (Figure 17).
package main

import (
	"fmt"
	"log"

	"cdas"
	"cdas/internal/alipr"
	"cdas/internal/imagetag"
)

func main() {
	// A tagging corpus: five subjects, 10 images each. Features are what
	// the machine sees; workers judge the images directly.
	images, err := imagetag.Generate(imagetag.Config{
		Seed:             3,
		Subjects:         imagetag.Figure17Subjects,
		ImagesPerSubject: 10,
		FeatureNoise:     0.42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Machine baseline: k-means tag propagation over image features.
	train, err := imagetag.Generate(imagetag.Config{Seed: 4, ImagesPerSubject: 60, FeatureNoise: 0.42})
	if err != nil {
		log.Fatal(err)
	}
	features := make([][]float64, len(train))
	tags := make([]string, len(train))
	for i, img := range train {
		features[i] = img.Features
		tags[i] = img.TrueTag
	}
	annotator, err := alipr.Train(features, tags, alipr.Options{K: 48})
	if err != nil {
		log.Fatal(err)
	}

	// Crowd pipeline through the engine (image tagging is an easier
	// perceptual task, so the population skews more accurate).
	simCfg := cdas.DefaultSimulatorConfig(5)
	simCfg.AccuracyMean, simCfg.AccuracySD = 0.85, 0.08
	simCfg.AccuracyLo, simCfg.AccuracyHi = 0.5, 0.99
	platform, _, err := cdas.NewSimulatedPlatform(simCfg)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := cdas.NewEngine(platform, nil, cdas.EngineConfig{
		JobName:          "imagetag",
		RequiredAccuracy: 0.92,
		HITSize:          25,
	})
	if err != nil {
		log.Fatal(err)
	}

	questions := make([]cdas.CrowdQuestion, len(images))
	for i, img := range images {
		questions[i] = img.Question()
	}
	goldenImgs, err := imagetag.Generate(imagetag.Config{
		Seed: 6, Subjects: []string{"forest"}, ImagesPerSubject: 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	golden := make([]cdas.CrowdQuestion, len(goldenImgs))
	for i, img := range goldenImgs {
		q := img.Question()
		q.ID = "golden/" + q.ID
		golden[i] = q
	}

	batches, err := eng.ProcessAll(questions, golden)
	if err != nil {
		log.Fatal(err)
	}

	truth := make(map[string]imagetag.Image, len(images))
	for _, img := range images {
		truth[img.ID] = img
	}
	crowdCorrect, aliprCorrect, total := 0, 0, 0
	for _, b := range batches {
		for _, r := range b.Results {
			img := truth[r.Question.ID]
			total++
			if r.Answer == img.TrueTag {
				crowdCorrect++
			}
			if annotator.Annotate(img.Features) == img.TrueTag {
				aliprCorrect++
			}
		}
	}
	fmt.Printf("images tagged: %d\n", total)
	fmt.Printf("crowd accuracy: %.3f\n", float64(crowdCorrect)/float64(total))
	fmt.Printf("ALIPR accuracy: %.3f\n", float64(aliprCorrect)/float64(total))
}
