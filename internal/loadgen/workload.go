// Deterministic workload construction: every tenant's question set,
// domain variant, priority, budget, watcher flag and arrival offset is
// a pure function of the profile — the harness can replay a workload
// bit for bit from its seed.
package loadgen

import (
	"fmt"
	"math"
	"time"

	"cdas/api"
	"cdas/internal/randx"
	"cdas/internal/textgen"
)

// Tenant is one synthetic requester.
type Tenant struct {
	// Index is the tenant's position (0-based); Name its job-name stem
	// ("t007" — round r submits "t007-r<r>" for r > 0).
	Index int
	Name  string
	// DomainVariant selects the tenant's answer-domain spelling; only
	// tenants of one variant share crowd work.
	DomainVariant int
	Domain        []string
	// Keywords are the synthetic movie names whose tweets form the
	// tenant's question set (shared blocks first, then private).
	Keywords []string
	Priority int
	Budget   float64
	// Watcher marks tenants that attach an SSE watcher to their jobs.
	Watcher bool
	// ArrivalOffset is the tenant's submit time within its round in the
	// timed mode (always 0 in closed-loop mode).
	ArrivalOffset time.Duration
}

// Workload is a fully materialised profile: the tenant roster plus the
// tweet stream and golden pool the in-process server serves them from.
type Workload struct {
	Profile Profile
	Tenants []Tenant
	// SharedBlocks/PrivateBlocks report the per-tenant block split the
	// overlap rounded to.
	SharedBlocks, PrivateBlocks int
	// Stream is the synthetic tweet stream; every tenant's keyword
	// filter matches exactly QuestionsPerTenant of its tweets.
	Stream []textgen.Tweet
	// Golden is the ground-truth pool for accuracy sampling.
	Golden []textgen.Tweet
	// Start/Window bound every submitted query's time filter.
	Start  time.Time
	Window time.Duration
}

// domainVariant returns variant v's answer domain: the TSA labels, plus
// one distinct abstain label per extra variant so variants canonicalise
// to distinct answer sets (and therefore distinct scheduler groups and
// engines).
func domainVariant(v int) []string {
	out := append([]string(nil), textgen.Labels...)
	if v > 0 {
		out = append(out, fmt.Sprintf("Abstain%02d", v))
	}
	return out
}

// Movie-name shapes. All names are eight characters, so no name can be
// a substring of another (the keyword filter is substring containment)
// and none collides with the lexicon words of the tweet generator.
func sharedMovie(variant, block int) string { return fmt.Sprintf("SH%02dB%03d", variant, block) }
func privateMovie(tenant, block int) string { return fmt.Sprintf("PT%03dB%02d", tenant, block) }

// BuildWorkload materialises the profile. The result depends only on
// the (validated) profile's fields.
func BuildWorkload(p Profile) (*Workload, error) {
	p, err := p.Validate()
	if err != nil {
		return nil, err
	}
	if p.Tenants > 1000 || p.QuestionsPerTenant/BlockSize > 100 {
		return nil, fmt.Errorf("loadgen: workload namespace caps exceeded (max 1000 tenants, %d questions per tenant)", 100*BlockSize)
	}
	blocks := p.QuestionsPerTenant / BlockSize
	shared := int(math.Round(p.Overlap * float64(blocks)))
	private := blocks - shared

	w := &Workload{
		Profile:       p,
		SharedBlocks:  shared,
		PrivateBlocks: private,
		Start:         time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC),
		Window:        24 * time.Hour,
	}

	// Movie roster: each domain variant owns one shared-block pool every
	// one of its tenants re-asks; each tenant owns its private blocks.
	var movies []string
	for v := 0; v < p.Domains; v++ {
		for b := 0; b < shared; b++ {
			movies = append(movies, sharedMovie(v, b))
		}
	}
	for t := 0; t < p.Tenants; t++ {
		for b := 0; b < private; b++ {
			movies = append(movies, privateMovie(t, b))
		}
	}

	arrivals := randx.New(p.Seed).Split("loadgen/arrivals")
	watchers := int(math.Round(p.WatcherFraction * float64(p.Tenants)))
	offset := time.Duration(0)
	for i := 0; i < p.Tenants; i++ {
		v := i % p.Domains
		t := Tenant{
			Index:         i,
			Name:          fmt.Sprintf("t%03d", i),
			DomainVariant: v,
			Domain:        domainVariant(v),
			Budget:        p.TenantBudget,
			// Bresenham spread: watchers distributed evenly over the
			// roster instead of clustering on the first indices.
			Watcher: (i+1)*watchers/p.Tenants > i*watchers/p.Tenants,
		}
		if p.PriorityLevels > 0 {
			t.Priority = i % p.PriorityLevels
		}
		for b := 0; b < shared; b++ {
			t.Keywords = append(t.Keywords, sharedMovie(v, b))
		}
		for b := 0; b < private; b++ {
			t.Keywords = append(t.Keywords, privateMovie(i, b))
		}
		if p.ArrivalMean > 0 {
			// Poisson arrivals: exponential inter-arrival gaps with the
			// configured mean, accumulated so offsets ascend by index.
			gap := arrivals.Exp(1 / p.ArrivalMean.Seconds())
			offset += time.Duration(gap * float64(time.Second))
			t.ArrivalOffset = offset
		}
		w.Tenants = append(w.Tenants, t)
	}

	stream, err := textgen.Generate(textgen.Config{
		Seed:           p.Seed + 1,
		Movies:         movies,
		TweetsPerMovie: BlockSize,
		Start:          w.Start,
		Span:           w.Window,
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: generating stream: %w", err)
	}
	w.Stream = stream
	golden, err := textgen.Generate(textgen.Config{
		Seed:           p.Seed + 2,
		Movies:         []string{"CALIB000"},
		TweetsPerMovie: 32,
		Start:          w.Start,
		Span:           w.Window,
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: generating golden pool: %w", err)
	}
	w.Golden = golden
	return w, nil
}

// JobName is the tenant's job name in the given round.
func (w *Workload) JobName(t Tenant, round int) string {
	if round == 0 {
		return t.Name
	}
	return fmt.Sprintf("%s-r%d", t.Name, round)
}

// Submission builds the tenant's round-r job submission. Rounds beyond
// the first re-ask the identical question set under a fresh name, so
// they exercise the verified-answer cache.
func (w *Workload) Submission(t Tenant, round int) api.JobSubmission {
	return api.JobSubmission{
		Name:             w.JobName(t, round),
		Kind:             "tsa",
		Keywords:         append([]string(nil), t.Keywords...),
		RequiredAccuracy: w.Profile.RequiredAccuracy,
		Domain:           append([]string(nil), t.Domain...),
		Start:            w.Start.Format(time.RFC3339),
		Window:           w.Window.String(),
		Priority:         t.Priority,
		Budget:           t.Budget,
		Aggregator:       w.Profile.Aggregator,
	}
}

// StreamSubmission builds the tenant's standing-query submission. Each
// tenant streams its own synthetic movie, so no two streams' items
// coalesce; the per-tenant source seed keeps every stream's arrival
// process independent yet reproducible.
func (w *Workload) StreamSubmission(t Tenant) api.StreamSubmission {
	p := w.Profile
	return api.StreamSubmission{
		Name:             t.Name,
		Keywords:         []string{fmt.Sprintf("SM%03dMOV", t.Index)},
		RequiredAccuracy: p.RequiredAccuracy,
		Domain:           append([]string(nil), t.Domain...),
		Start:            w.Start.Format(time.RFC3339),
		Window:           p.StreamWindow.String(),
		WindowCapacity:   p.StreamCapacity,
		Items:            p.StreamItems,
		Rate:             p.StreamRate,
		SourceSeed:       p.Seed + 100 + uint64(t.Index),
		Priority:         t.Priority,
		Budget:           t.Budget,
		Aggregator:       p.Aggregator,
	}
}

// EnumSubmission builds the tenant's enumeration submission. Each
// tenant enumerates its own hidden set (named after a tenant-unique
// keyword), so no two jobs' items collide; the per-tenant source seed
// keeps every simulated crowd independent yet reproducible.
func (w *Workload) EnumSubmission(t Tenant) api.JobSubmission {
	p := w.Profile
	return api.JobSubmission{
		Name:     t.Name,
		Kind:     api.KindEnumeration,
		Keywords: []string{fmt.Sprintf("EN%03dSET", t.Index)},
		Priority: t.Priority,
		Budget:   t.Budget,
		Enum: &api.EnumSpec{
			ItemValue:  p.EnumItemValue,
			MaxBatches: p.EnumMaxBatches,
			Universe:   p.EnumUniverse,
			Popularity: p.EnumPopularity,
			SourceSeed: p.Seed + 200 + uint64(t.Index),
		},
	}
}

// TotalJobs is the number of jobs the workload submits across rounds.
func (w *Workload) TotalJobs() int { return w.Profile.Tenants * w.Profile.Rounds }

// TotalQuestions is the number of questions submitted across rounds
// (before any dedup).
func (w *Workload) TotalQuestions() int {
	return w.Profile.Tenants * w.Profile.QuestionsPerTenant * w.Profile.Rounds
}
