package scheduler

import (
	"strings"
	"testing"

	"cdas/internal/crowd"
)

func TestNormalizeText(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"  ", ""},
		{"Hello World", "hello world"},
		{"  Hello   World  ", "hello world"},
		{"HELLO\t\nworld", "hello world"},
		{"a  b\tc\nd", "a b c d"},
		{"already normal", "already normal"},
	}
	for _, c := range cases {
		if got := NormalizeText(c.in); got != c.want {
			t.Errorf("NormalizeText(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCanonicalDomain(t *testing.T) {
	a := CanonicalDomain([]string{"Positive", "Neutral", "Negative"})
	b := CanonicalDomain([]string{"negative", " neutral ", "POSITIVE"})
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Errorf("canonical domains differ: %v vs %v", a, b)
	}
	if got := strings.Join(a, "|"); got != "negative|neutral|positive" {
		t.Errorf("canonical domain = %q, want sorted normalised entries", got)
	}
	// Duplicates (after normalisation) collapse.
	c := CanonicalDomain([]string{"pos", "POS", "neg"})
	if len(c) != 2 {
		t.Errorf("duplicate entries kept: %v", c)
	}
}

func TestQuestionKeyEquivalence(t *testing.T) {
	base := crowd.Question{
		ID:     "t1/q1",
		Text:   "Is this tweet positive about Thor?",
		Domain: []string{"Positive", "Neutral", "Negative"},
	}
	same := []crowd.Question{
		{ID: "other/id", Text: base.Text, Domain: base.Domain},
		{ID: "x", Text: "  is THIS tweet  positive about thor? ", Domain: base.Domain},
		{ID: "y", Text: base.Text, Domain: []string{"negative", "Neutral", "positive"}},
		{ID: "z", Text: base.Text, Domain: base.Domain, Truth: "Positive", Difficulty: 0.9},
	}
	want := QuestionKey(base)
	for i, q := range same {
		if got := QuestionKey(q); got != want {
			t.Errorf("case %d: key %q != base key %q", i, got, want)
		}
	}
}

func TestQuestionKeyDistinctions(t *testing.T) {
	base := crowd.Question{Text: "Is this tweet positive?", Domain: []string{"pos", "neu", "neg"}}
	diffText := crowd.Question{Text: "Is this tweet negative?", Domain: base.Domain}
	diffDomain := crowd.Question{Text: base.Text, Domain: []string{"yes", "no"}}
	if QuestionKey(base) == QuestionKey(diffText) {
		t.Error("different texts share a key")
	}
	if QuestionKey(base) == QuestionKey(diffDomain) {
		t.Error("different domains share a key")
	}
	// The domain hash is a dedicated key prefix: distinct canonical
	// domains can never collide on the full key.
	if !strings.HasPrefix(QuestionKey(base), DomainKey(base.Domain)+"/") {
		t.Error("question key does not start with its domain key")
	}
}

func TestHashStringsInjective(t *testing.T) {
	// Length-prefixing means concatenation ambiguity cannot collide:
	// ["ab","c"] vs ["a","bc"] vs ["abc"].
	keys := map[string][]string{}
	for _, parts := range [][]string{{"ab", "c"}, {"a", "bc"}, {"abc"}, {"", "abc"}, {"abc", ""}} {
		h := hashStrings(parts)
		if prev, dup := keys[h]; dup {
			t.Fatalf("hash collision between %v and %v", prev, parts)
		}
		keys[h] = parts
	}
}

func TestCanonicalID(t *testing.T) {
	key := QuestionKey(crowd.Question{Text: "q", Domain: []string{"a", "b"}})
	id := CanonicalID(key)
	if !strings.HasPrefix(id, "c/") {
		t.Errorf("canonical ID %q lacks the c/ prefix", id)
	}
	if strings.HasPrefix(id, "golden/") {
		t.Errorf("canonical ID %q collides with the golden namespace", id)
	}
}
