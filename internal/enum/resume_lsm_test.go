package enum

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"cdas/internal/jobs"
	"cdas/internal/metrics"
)

// slowSource paces batches so the first incarnation has a mid-run
// moment to die in.
type slowSource struct {
	Source
	delay time.Duration
}

func (s slowSource) Batch(i int) []Contribution {
	time.Sleep(s.delay)
	return s.Source.Batch(i)
}

// enumIncarnation wires one process lifetime: scheduler charging the
// service's durable budget, enum runner committing marks to the LSM
// store, single-worker dispatcher.
func enumIncarnation(t *testing.T, svc *jobs.Service, counters *metrics.Registry, delay time.Duration) (*jobs.Dispatcher, *enumCollector, func()) {
	t.Helper()
	sched := testScheduler(t, 0, func(job string, amount float64) { _ = svc.ChargeBudget(job, amount) }, counters)
	col := &enumCollector{}
	source := func(job jobs.Job) (Source, error) {
		src, err := NewSimSource(job)
		if err != nil || delay <= 0 {
			return src, err
		}
		return slowSource{Source: src, delay: delay}, nil
	}
	runner := NewRunner(RunnerConfig{
		Scheduler: sched,
		Source:    source,
		Marks:     svc,
		OnCharge:  func(job string, amount float64) { _ = svc.ChargeBudget(job, amount) },
		Counters:  counters,
		Publish:   col.publish,
	})
	disp, err := jobs.NewDispatcher(svc, runner, 1)
	if err != nil {
		t.Fatal(err)
	}
	return disp, col, func() {}
}

// TestEnumKillResume is the enumeration durability contract end to end
// on the LSM store: kill -9 mid-run (the store stops accepting writes
// with batches still to buy), reopen, and the resumed run continues
// from the batch after the last durably committed one — never re-buying
// or re-charging a batch the dead process already paid for, and never
// losing a discovered item.
func TestEnumKillResume(t *testing.T) {
	dir := t.TempDir()
	counters := metrics.NewRegistry()
	job := enumJob("kill/audubon", jobs.EnumSpec{
		ItemValue:  10, // high value: the marginal rule never stops early
		Universe:   200,
		MaxBatches: 10,
		SourceSeed: 29,
	})

	// ---- First incarnation: commit two batches, then kill -9. ----
	svc, err := jobs.OpenService(jobs.ServiceConfig{Dir: dir, Engine: jobs.EngineLSM, Counters: counters})
	if err != nil {
		t.Fatal(err)
	}
	disp, _, _ := enumIncarnation(t, svc, counters, 25*time.Millisecond)
	disp.Start()
	if _, err := disp.Submit(job); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if mark, ok := svc.StreamMarkFor(job.Name); ok && mark.Window >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no second batch committed before the deadline")
		}
		time.Sleep(time.Millisecond)
	}
	// The store dies first — what a killed process leaves behind: a
	// committed batch mark and a "running" lifecycle record.
	svc.Close()
	disp.Stop()
	crash, ok := svc.StreamMarkFor(job.Name)
	if !ok || crash.Window < 1 {
		t.Fatalf("crash mark = %+v ok=%v, want window >= 1", crash, ok)
	}
	if crash.Spent <= 0 || crash.Enum == nil || len(crash.Enum.Counts) == 0 {
		t.Fatalf("crash mark should carry spend and a result set, got %+v", crash)
	}

	// ---- Second incarnation: replay the LSM store and resume. ----
	svc2, err := jobs.OpenService(jobs.ServiceConfig{Dir: dir, Engine: jobs.EngineLSM, Counters: counters})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	recovered, ok := svc2.StreamMarkFor(job.Name)
	if !ok {
		t.Fatal("no recovered mark")
	}
	crashJSON, _ := json.Marshal(crash)
	recoveredJSON, _ := json.Marshal(recovered)
	if string(crashJSON) != string(recoveredJSON) {
		t.Fatalf("recovered mark %s != crash mark %s", recoveredJSON, crashJSON)
	}
	if len(svc2.Resumed()) == 0 {
		t.Fatal("replay should resume the interrupted enumeration job")
	}
	disp2, col2, _ := enumIncarnation(t, svc2, counters, 0)
	disp2.Start()
	deadline = time.Now().Add(30 * time.Second)
	for {
		st, ok := disp2.Status(job.Name)
		if ok && st.State.Terminal() {
			if st.State != jobs.StateDone {
				t.Fatalf("resumed job ended %s (%s), want done", st.State, st.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("resumed job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
	disp2.Stop()

	// The resumed run must pick up at the batch after the last committed
	// one — batches the dead process paid for are not re-bought.
	col2.mu.Lock()
	batches := append([]BatchResult(nil), col2.batches...)
	done := col2.done
	col2.mu.Unlock()
	if len(batches) == 0 || !done {
		t.Fatalf("resumed run published %d batches, done=%v", len(batches), done)
	}
	if first := batches[0].Batch; first != crash.Window+1 {
		t.Errorf("resumed run started at batch %d, want %d", first, crash.Window+1)
	}
	// ...and never re-charged: final committed spend is exactly the
	// crash-time spend plus the resumed batches' costs, and the durable
	// budget state agrees.
	final, ok := svc2.StreamMarkFor(job.Name)
	if !ok || final.Window != job.Enum.MaxBatches-1 {
		t.Fatalf("final mark = %+v, want window %d", final, job.Enum.MaxBatches-1)
	}
	if final.Enum.Stopped != StopMaxBatches {
		t.Fatalf("final stop = %q, want %q", final.Enum.Stopped, StopMaxBatches)
	}
	var resumedCost float64
	for _, b := range batches {
		resumedCost += b.Cost
	}
	if diff := math.Abs(final.Spent - (crash.Spent + resumedCost)); diff > 1e-9 {
		t.Errorf("spend re-charged: final %v != crash %v + resumed batches %v (diff %v)",
			final.Spent, crash.Spent, resumedCost, diff)
	}
	budget := svc2.Budget()
	if diff := math.Abs(budget.Jobs[job.Name] - final.Spent); diff > 1e-9 {
		t.Errorf("durable budget %v != mark spend %v", budget.Jobs[job.Name], final.Spent)
	}
	// No discovered item was lost across the crash: every item in the
	// crash set is still in the final set with at least its old count.
	for key, n := range crash.Enum.Counts {
		if final.Enum.Counts[key] < n {
			t.Errorf("item %s count regressed: %d -> %d", key, n, final.Enum.Counts[key])
		}
	}
	// The resumed contributions line up exactly: batches are pure in
	// their index, so the full run's contribution count is what a single
	// uninterrupted run would have produced.
	if want := int64(job.Enum.MaxBatches * job.Enum.BatchContributions()); final.Enum.Contributions != want {
		t.Errorf("contributions = %d, want %d", final.Enum.Contributions, want)
	}
}
