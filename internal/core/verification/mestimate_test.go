package verification

import (
	"math"
	"testing"

	"cdas/internal/stats"
)

func TestEstimateMAtLeastK(t *testing.T) {
	for k := 0; k <= 50; k++ {
		m := EstimateM(k, DefaultEpsilon)
		if m < k {
			t.Errorf("EstimateM(%d) = %d < k", k, m)
		}
		if m < 2 {
			t.Errorf("EstimateM(%d) = %d < 2", k, m)
		}
	}
}

func TestEstimateMSmallK(t *testing.T) {
	if m := EstimateM(0, DefaultEpsilon); m != 2 {
		t.Errorf("EstimateM(0) = %d, want 2", m)
	}
	if m := EstimateM(1, DefaultEpsilon); m != 2 {
		t.Errorf("EstimateM(1) = %d, want 2", m)
	}
}

func TestEstimateMHandComputedValues(t *testing.T) {
	// At eps = 0.05:
	// k=2: Lemma 1 -> m > 1/0.9 = 1.11; Lemma 2 -> m > 1/(1-2*sqrt(.05))
	//      = 1.81; max -> 2.
	// k=3: Lemma 1 -> m > 2/(1.5 - 2*sqrt(.15)) = 2.76 -> 3; Lemma 2
	//      degenerates (1 - 3*.05^(1/3) < 0); -> 3.
	// k=4: Lemma 1 -> m > 3/(H_3 - 3*(0.2)^(1/3)) = 38.03 -> 39; Lemma 2
	//      degenerates; -> 39.
	// k=5: both lemmas degenerate (the exact condition is infeasible:
	//      1/5! < 0.05), fall back to k -> 5.
	cases := map[int]int{2: 2, 3: 3, 4: 39, 5: 5, 10: 10}
	for k, want := range cases {
		if got := EstimateM(k, DefaultEpsilon); got != want {
			t.Errorf("EstimateM(%d, 0.05) = %d, want %d", k, got, want)
		}
	}
}

// observationProb computes C(m,k)/m^k, the probability of observing k
// specific distinct answers used in the Section 4.1 derivation.
func observationProb(m, k int) float64 {
	lg := stats.LogChoose(m, k) - float64(k)*math.Log(float64(m))
	return math.Exp(lg)
}

func TestEstimateMFeasibleCasesExceedEpsilon(t *testing.T) {
	// k=2 is the one case at eps=0.05 where Lemma 2 (the sufficient
	// bound) is live, so the returned m must make the observation
	// non-rare. (At k=3 only Lemma 1 — necessary, not sufficient — is
	// live; Theorem 5 returns m=3 although the exact condition would need
	// m=4. That is faithful to the paper and covered by the
	// hand-computed-values test.)
	m := EstimateM(2, DefaultEpsilon)
	if p := observationProb(m, 2); p <= DefaultEpsilon {
		t.Errorf("k=2: m=%d gives observation probability %v <= eps", m, p)
	}
}

func TestEstimateMLemma2Sufficiency(t *testing.T) {
	// Whenever Lemma 2's denominator is positive, its bound is a
	// sufficient condition: the returned m must satisfy the exact
	// condition. eps = 0.01 keeps Lemma 2 alive up to k=3.
	for _, k := range []int{2, 3} {
		den := 1 - float64(k)*math.Pow(0.01, 1/float64(k))
		if den <= 0 {
			t.Fatalf("test setup: Lemma 2 degenerate at k=%d", k)
		}
		m := EstimateM(k, 0.01)
		if p := observationProb(m, k); p <= 0.01 {
			t.Errorf("k=%d eps=0.01: m=%d gives observation probability %v <= eps", k, m, p)
		}
	}
}

func TestEstimateMInvalidEpsilonFallsBack(t *testing.T) {
	want := EstimateM(5, DefaultEpsilon)
	for _, eps := range []float64{0, -1, 1, 2, math.NaN()} {
		if got := EstimateM(5, eps); got != want {
			t.Errorf("EstimateM(5, %v) = %d, want fallback %d", eps, got, want)
		}
	}
}

func TestEstimateMLemma1IsNecessary(t *testing.T) {
	// Lemma 1 upper-bounds C(m,k)/m^k via AM-GM, so any m at or below its
	// bound must violate the exact condition. Spot-check k=2..4.
	for _, k := range []int{2, 3, 4} {
		km1 := float64(k - 1)
		den := stats.Harmonic(k-1) - km1*math.Pow(DefaultEpsilon*float64(k), 1/km1)
		if den <= 0 {
			continue
		}
		bound := km1 / den
		mBelow := int(math.Floor(bound)) // largest integer not exceeding the bound
		if mBelow < k {
			continue // domain can't even hold the observed answers
		}
		if p := observationProb(mBelow, k); p > DefaultEpsilon {
			t.Errorf("k=%d: m=%d below Lemma 1 bound %v but P=%v > eps", k, mBelow, bound, p)
		}
	}
}
