// Example standing demonstrates the continuous-query subsystem: a
// standing query consumes a deterministic event-time stream, closes
// tumbling windows at the watermark, sizes its crowd batches from the
// observed arrival rate, and degrades under saturation (shed batches,
// partial-vote verdicts, accounted drops) instead of buffering without
// bound. Every window close commits a durable stream mark, so the
// example kills the service mid-stream — kill -9, morally — reopens
// the store and shows the replay resuming behind the last committed
// window without re-charging the crowd for windows already paid for.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/exec"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
	"cdas/internal/scheduler"
	"cdas/internal/standing"
	"cdas/internal/textgen"
	"cdas/internal/tsa"
)

const (
	seed     = 11
	jobName  = "thor-standing"
	accuracy = 0.85
)

func main() {
	dir, err := os.MkdirTemp("", "cdas-standing-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("job store: %s\n\n", dir)

	counters := metrics.NewRegistry()

	// ---- First incarnation: close a few windows, then pull the plug. ----
	svc, err := jobs.OpenService(jobs.ServiceConfig{Dir: dir, Counters: counters})
	if err != nil {
		log.Fatal(err)
	}
	disp := newIncarnation(svc, counters, 40*time.Millisecond)
	disp.Start()
	if _, err := disp.Submit(continuousJob()); err != nil {
		log.Fatal(err)
	}
	// Wait for two durably committed windows, then cut the process down:
	// the store stops accepting writes first, so whatever the runner was
	// doing next never reaches disk.
	for {
		if mark, ok := svc.StreamMarkFor(jobName); ok && mark.Window >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	svc.Close()
	disp.Stop()
	mark, _ := svc.StreamMarkFor(jobName)
	fmt.Printf("\ncrash after window %d: committed spend=$%.2f seen=%d matched=%d\n\n",
		mark.Window, mark.Spent, mark.Seen, mark.Matched)

	// ---- Second incarnation: replay the store and resume the stream. ----
	svc2, err := jobs.OpenService(jobs.ServiceConfig{Dir: dir, Counters: counters})
	if err != nil {
		log.Fatal(err)
	}
	defer svc2.Close()
	mark2, _ := svc2.StreamMarkFor(jobName)
	fmt.Printf("replay recovered stream mark: window=%d spend=$%.2f\n", mark2.Window, mark2.Spent)
	for _, name := range svc2.Resumed() {
		fmt.Printf("replay resumed interrupted job %q\n", name)
	}
	fmt.Println()
	disp2 := newIncarnation(svc2, counters, 0)
	disp2.Start()
	for {
		st, ok := disp2.Status(jobName)
		if ok && st.State.Terminal() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	disp2.Stop()

	final, _ := svc2.StreamMarkFor(jobName)
	st, _ := disp2.Status(jobName)
	fmt.Printf("\nfinal: state=%s windows=%d seen=%d matched=%d dropped=%d degraded=%d spend=$%.2f\n",
		st.State, final.Window+1, final.Seen, final.Matched, final.Dropped, final.Degraded, final.Spent)
	fmt.Printf("counters: windows_closed=%d items_seen=%d items_dropped=%d degraded_verdicts=%d\n",
		counters.Get(metrics.CounterStreamWindowsClosed),
		counters.Get(metrics.CounterStreamItemsSeen),
		counters.Get(metrics.CounterStreamItemsDropped),
		counters.Get(metrics.CounterStreamDegradedVerdicts))
}

// continuousJob is the demo standing query: a one-minute tumbling
// window over a seeded stream arriving too fast for the tiny window
// capacity, so the degrade ladder (shed, degraded verdicts, accounted
// drops) actually engages.
func continuousJob() jobs.Job {
	return jobs.Job{
		Name: jobName,
		Kind: jobs.KindContinuous,
		Query: jobs.Query{
			Keywords:         []string{"Thor"},
			RequiredAccuracy: accuracy,
			Domain:           append([]string(nil), textgen.Labels...),
			Start:            time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC),
			Window:           time.Minute,
		},
		Stream: &jobs.StreamSpec{
			Items:          96,
			Rate:           0.4, // ~24 arrivals per window
			SourceSeed:     seed,
			WindowCapacity: 5,
			MaxBacklog:     10,
		},
	}
}

// newIncarnation wires one process lifetime: scheduler, window
// coordinator, standing runner and a single-worker dispatcher, with
// the persisted budget ledger restored. delay paces HIT publication so
// the first incarnation has a mid-stream moment to die in.
func newIncarnation(svc *jobs.Service, counters *metrics.Registry, delay time.Duration) *jobs.Dispatcher {
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(seed))
	if err != nil {
		log.Fatal(err)
	}
	golden, err := textgen.Generate(textgen.Config{
		Seed: seed + 2, Movies: []string{"The Calibration Reel"}, TweetsPerMovie: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	var pf engine.Platform = engine.CrowdPlatform{Platform: platform}
	if delay > 0 {
		pf = slowPlatform{Platform: pf, delay: delay}
	}
	sched, err := scheduler.New(scheduler.Config{
		Platform: pf,
		Engine:   engine.Config{RequiredAccuracy: 0.9, HITSize: 20, MaxInflightHITs: 2, Seed: seed},
		Golden:   tsa.GoldenQuestions(golden),
		OnCharge: func(job string, amount float64) {
			if err := svc.ChargeBudget(job, amount); err != nil {
				log.Printf("standing: recording charge for %q: %v", job, err)
			}
		},
		Counters: counters,
	})
	if err != nil {
		log.Fatal(err)
	}
	persisted := svc.Budget()
	lines := make(map[string]scheduler.JobBudget, len(persisted.Jobs))
	for name, spent := range persisted.Jobs {
		lines[name] = scheduler.JobBudget{Spent: spent}
	}
	sched.Ledger().Restore(persisted.GlobalSpent, lines)

	coord := standing.NewCoordinator(sched, 0)
	runner := standing.NewRunner(standing.RunnerConfig{
		Scheduler: sched,
		Coord:     coord,
		Marks:     svc,
		Counters:  counters,
		Publish:   printWindow,
	})
	disp, err := jobs.NewDispatcher(svc, runner, 1)
	if err != nil {
		log.Fatal(err)
	}
	return disp
}

// printWindow renders each window close (and the terminal event) as
// one line — the example's stand-in for the SSE stream.
func printWindow(job jobs.Job, win *standing.WindowResult, mark jobs.StreamMark, sum exec.Summary, progress float64, done bool) {
	if win == nil {
		if done {
			fmt.Printf("  stream done: progress=%.0f%% spend=$%.2f\n", progress*100, mark.Spent)
		}
		return
	}
	shed := ""
	if win.Shed {
		shed = " [shed]"
	}
	fmt.Printf("  window %d [%s – %s): items=%-2d answered=%d degraded=%d dropped=%d batch=%d cost=$%.2f%s\n",
		win.Window,
		win.Start.Format("15:04"), win.End.Format("15:04"),
		win.Items, win.Answered, win.Degraded, win.Dropped, win.BatchSize, win.Cost, shed)
}

// slowPlatform delays each HIT publication, simulating a marketplace
// where assignments take real time.
type slowPlatform struct {
	engine.Platform
	delay time.Duration
}

func (p slowPlatform) Publish(hit crowd.HIT, n int) (engine.Run, error) {
	time.Sleep(p.delay)
	return p.Platform.Publish(hit, n)
}
