module cdas

go 1.24
