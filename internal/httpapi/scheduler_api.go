// Read API for the cross-query crowd scheduler: the deprecated
// GET /api/scheduler reports batching, dedup-cache and budget state in
// the scheduler's native shape (v1.go serves the typed api.SchedulerState
// at GET /v1/scheduler), and POST /jobs/{name}/unpark is the deprecated
// alias of POST /v1/jobs/{name}:unpark.
package httpapi

import (
	"net/http"

	"cdas/api"
	"cdas/internal/scheduler"
)

// SchedulerReporter is the slice of the scheduler the API needs.
// *scheduler.Scheduler satisfies it.
type SchedulerReporter interface {
	State() scheduler.State
}

// SetScheduler attaches the cross-query scheduler behind the scheduler
// routes. A Server without one answers them with 503.
func (s *Server) SetScheduler(r SchedulerReporter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sched = r
}

func (s *Server) handleScheduler(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	sched := s.sched
	s.mu.RUnlock()
	if sched == nil {
		writeError(w, api.Unavailable("no scheduler attached"))
		return
	}
	writeJSON(w, sched.State())
}

func (s *Server) handleUnparkJob(w http.ResponseWriter, r *http.Request) {
	ctl, ok := s.requireJobs(w)
	if !ok {
		return
	}
	name := r.PathValue("name")
	if err := ctl.Unpark(name); err != nil {
		writeError(w, jobError(err))
		return
	}
	st, _ := ctl.Status(name)
	writeJSON(w, s.jobStatus(st))
}
