package jobstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the WAL scanner: Open must never
// panic or error on junk (junk is a torn tail, not an IO failure), the
// recovered state must be appendable, and a second recovery must see
// exactly the first recovery's entries plus the new append — i.e.
// recovery is a fixed point no matter what was on disk. The same
// property must hold across a snapshot: checkpoint + tail recovery
// (snapshot watermark plus post-snapshot appends) is also a fixed
// point.
func FuzzReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a wal at all"))
	f.Add(frame(1, []byte("good record")))
	f.Add(append(frame(1, []byte("good")), frame(2, []byte("also good"))...))
	f.Add(append(frame(1, []byte("good")), 0xde, 0xad, 0xbe)) // torn tail
	f.Add(frame(0, nil))
	f.Add(bytes.Repeat([]byte{0xff}, headerSize*3))

	f.Fuzz(func(t *testing.T, wal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), wal, 0o644); err != nil {
			t.Skip()
		}
		l, err := Open(dir)
		if err != nil {
			t.Fatalf("Open on arbitrary WAL bytes errored: %v", err)
		}
		recovered := l.Entries()
		if _, err := l.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		l.Close()

		r, err := Open(dir)
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer r.Close()
		again := r.Entries()
		if len(again) != len(recovered)+1 {
			t.Fatalf("second recovery has %d entries, want %d", len(again), len(recovered)+1)
		}
		for i := range recovered {
			if !bytes.Equal(again[i], recovered[i]) {
				t.Fatalf("entry %d changed across recoveries: %q vs %q", i, again[i], recovered[i])
			}
		}
		if string(again[len(again)-1]) != "post-recovery" {
			t.Fatalf("appended record lost: %q", again[len(again)-1])
		}

		// Checkpoint + tail: snapshot the recovered state, append one
		// more record, and recover again — the snapshot watermark plus
		// the post-snapshot tail must be exactly what was written.
		if err := r.WriteSnapshot([]byte("state-at-snapshot")); err != nil {
			t.Fatalf("WriteSnapshot: %v", err)
		}
		if _, err := r.Append([]byte("post-snapshot")); err != nil {
			t.Fatalf("Append after snapshot: %v", err)
		}
		r.Close()

		s, err := Open(dir)
		if err != nil {
			t.Fatalf("post-snapshot Open: %v", err)
		}
		defer s.Close()
		snap, snapSeq := s.Snapshot()
		if string(snap) != "state-at-snapshot" {
			t.Fatalf("snapshot payload lost: %q", snap)
		}
		if snapSeq == 0 || snapSeq > s.Seq() {
			t.Fatalf("snapshot watermark %d outside committed range %d", snapSeq, s.Seq())
		}
		tail := s.Entries()
		if len(tail) != 1 || string(tail[0]) != "post-snapshot" {
			t.Fatalf("checkpoint+tail recovery saw %d entries %q, want [post-snapshot]", len(tail), tail)
		}
	})
}
