// Sentiment: the paper's running example — a Twitter sentiment analytics
// job over a (simulated) tweet stream, producing the Table 1 style
// percentages-plus-reasons presentation.
package main

import (
	"fmt"
	"log"
	"time"

	"cdas"
	"cdas/internal/textgen"
	"cdas/internal/tsa"
)

func main() {
	platform, _, err := cdas.NewSimulatedPlatform(cdas.DefaultSimulatorConfig(7))
	if err != nil {
		log.Fatal(err)
	}
	eng, err := cdas.NewEngine(platform, nil, cdas.EngineConfig{
		JobName:          "tsa",
		RequiredAccuracy: 0.9,
		HITSize:          50,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Register the job with the job manager (Definition 1's query).
	manager := cdas.NewJobManager()
	start := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	query := tsa.Query("Kung Fu Panda 2", 0.9, start, 24*time.Hour)
	plan, err := manager.Register(cdas.Job{Name: "kfp2", Kind: cdas.JobTSA, Query: query})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("processing plan:")
	for _, t := range plan.ComputerTasks {
		fmt.Printf("  [computer] %s: %s\n", t.Name, t.Description)
	}
	for _, t := range plan.HumanTasks {
		fmt.Printf("  [human]    %s: %s\n", t.Name, t.Description)
	}

	// Simulated tweet stream + golden pool (stand-ins for live Twitter).
	stream, err := textgen.Generate(textgen.Config{
		Seed: 8, Movies: []string{"Kung Fu Panda 2"}, TweetsPerMovie: 80,
	})
	if err != nil {
		log.Fatal(err)
	}
	golden, err := textgen.Generate(textgen.Config{
		Seed: 9, Movies: []string{"The Calibration Reel"}, TweetsPerMovie: 40,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := tsa.Run(eng, query, stream, golden)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nopinions on %q (%d tweets):\n", "Kung Fu Panda 2", res.Tweets)
	for _, label := range res.Summary.Domain {
		fmt.Printf("  %-9s %5.1f%%  reasons: %v\n",
			label, 100*res.Summary.Percentages[label], res.Summary.Reasons[label])
	}
	fmt.Printf("\naccuracy vs simulated ground truth: %.3f\n", res.Accuracy)
}
