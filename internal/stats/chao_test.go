package stats

import (
	"math"
	"testing"
)

func TestChao92ClosedForm(t *testing.T) {
	cases := []struct {
		name string
		freq map[int]int
		want SpeciesEstimate
	}{
		{
			// Four items each seen three times: full coverage, estimate
			// is exactly the observed count.
			name: "full-coverage",
			freq: map[int]int{3: 4},
			want: SpeciesEstimate{Observed: 4, Samples: 12, Singletons: 0, Coverage: 1, CV2: 0, Total: 4},
		},
		{
			// f1=2, f2=4: n=10, D=6, C-hat=0.8, N0=7.5,
			// sum k(k-1)f_k = 8, gamma^2 = max(0, 7.5*8/90 - 1) = 0,
			// so N-hat = 7.5.
			name: "homogeneous",
			freq: map[int]int{1: 2, 2: 4},
			want: SpeciesEstimate{Observed: 6, Samples: 10, Singletons: 2, Coverage: 0.8, CV2: 0, Total: 7.5},
		},
		{
			// All singletons: C-hat=0, Chao1 fallback D + f1(f1-1)/2 =
			// 5 + 10 = 15.
			name: "all-singletons",
			freq: map[int]int{1: 5},
			want: SpeciesEstimate{Observed: 5, Samples: 5, Singletons: 5, Coverage: 0, CV2: 0, Total: 15},
		},
		{
			name: "empty",
			freq: nil,
			want: SpeciesEstimate{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Chao92(tc.freq)
			if got.Observed != tc.want.Observed || got.Samples != tc.want.Samples || got.Singletons != tc.want.Singletons {
				t.Fatalf("Chao92(%v) counts = %+v, want %+v", tc.freq, got, tc.want)
			}
			if math.Abs(got.Coverage-tc.want.Coverage) > 1e-12 ||
				math.Abs(got.CV2-tc.want.CV2) > 1e-12 ||
				math.Abs(got.Total-tc.want.Total) > 1e-12 {
				t.Fatalf("Chao92(%v) = %+v, want %+v", tc.freq, got, tc.want)
			}
		})
	}
}

// The estimate can never fall below the number of distinct items
// actually observed, across a grid of histograms.
func TestChao92AtLeastObserved(t *testing.T) {
	for f1 := 0; f1 <= 12; f1++ {
		for f2 := 0; f2 <= 8; f2++ {
			for f5 := 0; f5 <= 4; f5++ {
				freq := map[int]int{1: f1, 2: f2, 5: f5}
				est := Chao92(freq)
				if est.Total < float64(est.Observed)-1e-9 {
					t.Fatalf("Chao92(%v): Total %v < Observed %d", freq, est.Total, est.Observed)
				}
				if est.Total > 0 && (est.Completeness() < 0 || est.Completeness() > 1) {
					t.Fatalf("Chao92(%v): Completeness %v out of [0,1]", freq, est.Completeness())
				}
			}
		}
	}
}

// Adding singletons to a fixed base histogram never lowers the
// estimate: unseen-item evidence only pushes N-hat up.
func TestChao92MonotoneInSingletons(t *testing.T) {
	bases := []map[int]int{
		{2: 5},
		{2: 3, 3: 2},
		{4: 10},
	}
	for _, base := range bases {
		prev := -1.0
		for f1 := 0; f1 <= 15; f1++ {
			freq := map[int]int{1: f1}
			for k, cnt := range base {
				freq[k] = cnt
			}
			est := Chao92(freq)
			if est.Total < prev-1e-9 {
				t.Fatalf("base %v: Total dropped from %v to %v at f1=%d", base, prev, est.Total, f1)
			}
			prev = est.Total
		}
	}
}

func TestChao92IgnoresBadEntries(t *testing.T) {
	got := Chao92(map[int]int{0: 7, -3: 2, 2: 4, 1: 0})
	want := Chao92(map[int]int{2: 4})
	if got != want {
		t.Fatalf("bad entries not ignored: got %+v, want %+v", got, want)
	}
}

func TestGoodTuringUnseen(t *testing.T) {
	if got := GoodTuringUnseen(nil); got != 1 {
		t.Fatalf("GoodTuringUnseen(nil) = %v, want 1", got)
	}
	if got := GoodTuringUnseen(map[int]int{1: 2, 2: 4}); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("GoodTuringUnseen = %v, want 0.2", got)
	}
	if got := GoodTuringUnseen(map[int]int{3: 4}); got != 0 {
		t.Fatalf("GoodTuringUnseen with no singletons = %v, want 0", got)
	}
}
