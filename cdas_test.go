package cdas_test

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"cdas"
)

func simulated(t *testing.T, seed uint64) (cdas.Platform, *cdas.Engine) {
	t.Helper()
	platform, _, err := cdas.NewSimulatedPlatform(cdas.DefaultSimulatorConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cdas.NewEngine(platform, nil, cdas.EngineConfig{
		JobName:          "public-api-test",
		RequiredAccuracy: 0.9,
		HITSize:          20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return platform, eng
}

func TestPlanWorkers(t *testing.T) {
	n, err := cdas.PlanWorkers(0.9, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 || n%2 != 1 {
		t.Errorf("PlanWorkers = %d, want odd >= 1", n)
	}
	if _, err := cdas.PlanWorkers(0.9, 0.4); err == nil {
		t.Error("uninformative crowd accepted")
	}
	if _, err := cdas.PlanWorkers(2, 0.75); err == nil {
		t.Error("invalid accuracy accepted")
	}
}

func TestVerifyPublicAPI(t *testing.T) {
	votes := []cdas.Vote{
		{Worker: "w1", Accuracy: 0.54, Answer: "pos"},
		{Worker: "w2", Accuracy: 0.31, Answer: "pos"},
		{Worker: "w3", Accuracy: 0.49, Answer: "neu"},
		{Worker: "w4", Accuracy: 0.73, Answer: "neg"},
		{Worker: "w5", Accuracy: 0.46, Answer: "pos"},
	}
	res, err := cdas.Verify(votes, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best().Answer != "neg" {
		t.Errorf("public Verify picked %q, want neg (paper Table 4)", res.Best().Answer)
	}
	if a, ok := cdas.HalfVoting(votes); !ok || a != "pos" {
		t.Errorf("HalfVoting = %q/%v", a, ok)
	}
	if a, ok := cdas.MajorityVoting(votes); !ok || a != "pos" {
		t.Errorf("MajorityVoting = %q/%v", a, ok)
	}
}

func TestEndToEndThroughPublicAPI(t *testing.T) {
	_, eng := simulated(t, 21)
	yesNo := []string{"yes", "no"}
	questions := []cdas.CrowdQuestion{
		{ID: "q1", Text: "positive?", Domain: yesNo, Truth: "yes"},
		{ID: "q2", Text: "positive?", Domain: yesNo, Truth: "no"},
	}
	golden := []cdas.CrowdQuestion{
		{ID: "g1", Text: "golden", Domain: yesNo, Truth: "yes"},
		{ID: "g2", Text: "golden", Domain: yesNo, Truth: "no"},
		{ID: "g3", Text: "golden", Domain: yesNo, Truth: "yes"},
		{ID: "g4", Text: "golden", Domain: yesNo, Truth: "no"},
	}
	batch, err := eng.ProcessBatch(questions, golden)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(batch.Results))
	}
	for _, r := range batch.Results {
		if r.Answer != r.Question.Truth {
			t.Errorf("question %s answered %q, truth %q", r.Question.ID, r.Answer, r.Question.Truth)
		}
	}
	if batch.Cost <= 0 {
		t.Error("no cost recorded")
	}
}

func TestOnlineVerifierPublicAPI(t *testing.T) {
	v, err := cdas.NewOnlineVerifier(10, 2, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := v.Add(cdas.Vote{Worker: "w", Accuracy: 0.9, Answer: "a"}); err != nil {
			t.Fatal(err)
		}
	}
	if !v.Terminated(cdas.ExpMax) {
		t.Error("overwhelming evidence should terminate ExpMax")
	}
	if v.Terminated(cdas.Never) {
		t.Error("Never must not terminate early")
	}
}

func TestJobManagerPublicAPI(t *testing.T) {
	m := cdas.NewJobManager()
	q := cdas.Query{
		Keywords:         []string{"iPhone4S"},
		RequiredAccuracy: 0.95,
		Domain:           []string{"Best Ever", "Good", "Not Satisfied"},
		Start:            time.Date(2011, 10, 14, 0, 0, 0, 0, time.UTC),
		Window:           10 * 24 * time.Hour,
	}
	plan, err := m.Register(cdas.Job{Name: "iphone", Kind: cdas.JobTSA, Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.HumanTasks) == 0 {
		t.Error("TSA plan missing human tasks")
	}
}

func TestEconomicsPublicAPI(t *testing.T) {
	if got := cdas.DefaultEconomics.PerAssignment(); math.Abs(got-0.012) > 1e-12 {
		t.Errorf("PerAssignment = %v, want 0.012", got)
	}
	model, err := cdas.NewPredictionModel(0.7)
	if err != nil {
		t.Fatal(err)
	}
	n, cost, err := model.PlanCost(cdas.DefaultEconomics, 0.9, 100, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || cost <= 0 {
		t.Errorf("PlanCost = %d workers, $%v", n, cost)
	}
}

func TestRenderHITPublicAPI(t *testing.T) {
	html, err := cdas.RenderHIT(cdas.HIT{
		ID:    "h",
		Title: "demo",
		Questions: []cdas.CrowdQuestion{
			{ID: "q", Text: "pick one", Domain: []string{"a", "b"}, Truth: "a"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html, "pick one") {
		t.Error("rendered HIT missing question text")
	}
}

func TestSummarisePublicAPI(t *testing.T) {
	s := cdas.Summarise(
		[]string{"pos", "neg"},
		[]cdas.Outcome{{ItemID: "1", Accepted: "pos"}},
		map[string]string{"1": "thor was amazing"},
		"thor",
	)
	if s.Percentages["pos"] != 1 {
		t.Errorf("pos pct = %v", s.Percentages["pos"])
	}
	for _, w := range s.Reasons["pos"] {
		if w == "thor" {
			t.Error("excluded keyword leaked into reasons")
		}
	}
}

func TestProfileStorePublicAPI(t *testing.T) {
	store := cdas.NewProfileStore()
	store.Record("job", "w", true)
	// Estimates are Laplace-smoothed: (1+1)/(1+2).
	if a, ok := store.Accuracy("job", "w"); !ok || math.Abs(a-2.0/3) > 1e-12 {
		t.Errorf("store accuracy = %v/%v, want 2/3", a, ok)
	}
}

func TestPrivacyManagerPublicAPI(t *testing.T) {
	pm := cdas.NewPrivacyManager()
	if got := pm.Sanitize("ping @someone"); strings.Contains(got, "someone") {
		t.Errorf("handle not masked: %q", got)
	}
}

func TestCrowdOpsPublicAPI(t *testing.T) {
	_, eng := simulated(t, 51)
	golden := []cdas.CrowdQuestion{
		{ID: "g1", Domain: []string{"yes", "no"}, Truth: "yes"},
		{ID: "g2", Domain: []string{"yes", "no"}, Truth: "no"},
		{ID: "g3", Domain: []string{"yes", "no"}, Truth: "yes"},
		{ID: "g4", Domain: []string{"yes", "no"}, Truth: "no"},
	}
	items := []cdas.OpItem{
		{ID: "a", Text: "a red apple", FilterTruth: true},
		{ID: "b", Text: "a blue car", FilterTruth: false},
	}
	res, err := cdas.CrowdFilter(eng, "Is this red?", items, golden)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, r := range res {
		if r.Keep == r.Item.FilterTruth {
			correct++
		}
	}
	if correct < 2 {
		t.Errorf("crowd filter got %d/2 on trivial items", correct)
	}
	sorted, err := cdas.CrowdSort(eng, "Which is larger?", []cdas.OpItem{
		{ID: "x", Text: "a mouse", Rank: 1},
		{ID: "y", Text: "an elephant", Rank: 2},
	}, golden)
	if err != nil {
		t.Fatal(err)
	}
	if sorted[0].Rank > sorted[1].Rank {
		t.Errorf("crowd sort inverted: %+v", sorted)
	}
}

func TestConsensusPublicAPI(t *testing.T) {
	votes := []cdas.ConsensusVote{
		{Question: "q1", Worker: "w1", Answer: "a"},
		{Question: "q1", Worker: "w2", Answer: "a"},
		{Question: "q1", Worker: "w3", Answer: "b"},
		{Question: "q2", Worker: "w1", Answer: "b"},
		{Question: "q2", Worker: "w2", Answer: "b"},
		{Question: "q2", Worker: "w3", Answer: "a"},
	}
	res, err := cdas.EstimateConsensus(votes, 2, cdas.ConsensusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers["q1"] != "a" || res.Answers["q2"] != "b" {
		t.Errorf("consensus answers = %v", res.Answers)
	}
	if res.WorkerAccuracy["w3"] >= res.WorkerAccuracy["w1"] {
		t.Error("the always-disagreeing worker should score lower")
	}
}

func TestMetricsPublicAPI(t *testing.T) {
	c := cdas.NewConfusion()
	c.Add("pos", "pos")
	c.Add("neg", "pos")
	if got := c.Accuracy(); got != 0.5 {
		t.Errorf("accuracy = %v", got)
	}
}

func TestEngineDeterministicUnderSeed(t *testing.T) {
	runOnce := func() []string {
		platform, _, err := cdas.NewSimulatedPlatform(cdas.DefaultSimulatorConfig(77))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := cdas.NewEngine(platform, nil, cdas.EngineConfig{
			JobName: "det", HITSize: 20, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		batch, err := eng.ProcessBatch(
			[]cdas.CrowdQuestion{
				{ID: "q1", Domain: []string{"a", "b", "c"}, Truth: "a"},
				{ID: "q2", Domain: []string{"a", "b", "c"}, Truth: "b"},
			},
			[]cdas.CrowdQuestion{
				{ID: "g1", Domain: []string{"a", "b"}, Truth: "a"},
				{ID: "g2", Domain: []string{"a", "b"}, Truth: "b"},
				{ID: "g3", Domain: []string{"a", "b"}, Truth: "a"},
			},
		)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, 0, len(batch.Results))
		for _, r := range batch.Results {
			out = append(out, r.Question.ID+"="+r.Answer)
		}
		return out
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("engine not deterministic: %v vs %v", a, b)
		}
	}
}

// TestServiceFacadesPublicAPI smokes the facade constructors the v1
// stack builds on: the durable job service + dispatcher, the result
// server (the SSE-capable dashboard), the streaming processor, the
// remote-platform pair and the crowd-join helpers.
func TestServiceFacadesPublicAPI(t *testing.T) {
	// Job service + dispatcher (in-memory).
	svc, err := cdas.OpenJobService(cdas.JobServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ran := make(chan string, 1)
	disp, err := cdas.NewJobDispatcher(svc, func(ctx context.Context, job cdas.Job, report func(float64, float64)) error {
		report(1, 0)
		ran <- job.Name
		return nil
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	disp.Start()
	defer disp.Stop()
	q := cdas.Query{
		Keywords:         []string{"iPhone4S"},
		RequiredAccuracy: 0.9,
		Domain:           []string{"Good", "Bad"},
		Start:            time.Date(2011, 10, 14, 0, 0, 0, 0, time.UTC),
		Window:           24 * time.Hour,
	}
	if _, err := disp.Submit(cdas.Job{Name: "facade", Kind: cdas.JobTSA, Query: q}); err != nil {
		t.Fatal(err)
	}
	select {
	case name := <-ran:
		if name != "facade" {
			t.Errorf("dispatcher ran %q", name)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dispatcher never ran the submitted job")
	}

	// Result server: publish and read back a query state.
	rs := cdas.NewResultServer()
	rs.Update(cdas.QueryState{Name: "facade", Domain: q.Domain, Progress: 0.5})
	if st, ok := rs.Get("facade"); !ok || st.Progress != 0.5 {
		t.Errorf("result server state = %+v (ok=%v)", st, ok)
	}

	// Streaming processor over a real engine.
	_, eng := simulated(t, 99)
	proc, err := cdas.NewStreamProcessor(cdas.StreamConfig{
		Name:   "facade",
		Query:  q,
		Engine: eng,
		Convert: func(item cdas.StreamItem) cdas.CrowdQuestion {
			return cdas.CrowdQuestion{ID: item.ID, Text: item.Text, Domain: q.Domain}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = proc

	// Remote platform pair: the REST server over a simulated crowd and
	// a client constructed for its protocol.
	_, rawSim, err := cdas.NewSimulatedPlatform(cdas.DefaultSimulatorConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if remote := cdas.NewRemoteServer(rawSim); remote == nil {
		t.Fatal("NewRemoteServer returned nil")
	}
	if rc := cdas.NewRemotePlatform("http://127.0.0.1:1", nil); rc == nil {
		t.Fatal("NewRemotePlatform returned nil")
	}

	// Matches filters a join result to accepted pairs.
	pairs := []cdas.JoinPair{{Match: true}, {Match: false}}
	if got := cdas.Matches(pairs); len(got) != 1 || !got[0].Match {
		t.Errorf("Matches = %+v", got)
	}
}
