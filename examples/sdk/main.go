// SDK: boots a complete in-process CDAS server (job service +
// dispatcher + concurrent HIT pipeline + v1 HTTP API) on a loopback
// port, then drives it purely through the cdas/client SDK — submit a
// job, stream its Figure 4 live view over SSE with WatchQuery, page
// through the job list with the auto-paginating iterator, and decode a
// typed error envelope. Everything a remote consumer of the v1 API
// would do, in one self-contained binary.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"cdas/api"
	"cdas/client"
	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/httpapi"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
	"cdas/internal/textgen"
	"cdas/internal/tsa"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// ---- Server side: the same assembly cdas-server performs. ----
	const seed = 7
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(seed))
	if err != nil {
		return err
	}
	movies := []string{"Kung Fu Panda 2", "Thor"}
	stream, err := textgen.Generate(textgen.Config{Seed: seed + 1, Movies: movies, TweetsPerMovie: 40})
	if err != nil {
		return err
	}
	golden, err := textgen.Generate(textgen.Config{Seed: seed + 2, Movies: []string{"The Calibration Reel"}, TweetsPerMovie: 30})
	if err != nil {
		return err
	}
	svc, err := jobs.OpenService(jobs.ServiceConfig{Counters: metrics.NewRegistry()})
	if err != nil {
		return err
	}
	defer svc.Close()
	srv := httpapi.NewServer()
	runner := tsa.NewJobRunner(tsa.RunnerConfig{
		Platform: engine.CrowdPlatform{Platform: platform},
		Stream:   stream,
		Golden:   golden,
		Engine:   engine.Config{HITSize: 20, MaxInflightHITs: 4, Seed: seed},
		API:      srv,
	})
	disp, err := jobs.NewDispatcher(svc, runner, 2)
	if err != nil {
		return err
	}
	srv.SetJobs(disp)
	disp.Start()
	defer disp.Stop()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	web := httpapi.NewHTTPServer(ln.Addr().String(), srv.Handler())
	go web.Serve(ln)
	defer web.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("in-process CDAS server on %s\n\n", base)

	// ---- Client side: only the SDK from here down. ----
	c := client.New(base)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	if h, err := c.Health(ctx); err != nil || h.Status != "ok" {
		return fmt.Errorf("health: %+v, %v", h, err)
	}

	start := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	for _, movie := range movies {
		if _, err := c.SubmitJob(ctx, api.JobSubmission{
			Name:             movie,
			Kind:             "tsa",
			Keywords:         []string{movie},
			RequiredAccuracy: 0.9,
			Domain:           []string{"Positive", "Neutral", "Negative"},
			Start:            start.Format(time.RFC3339),
			Window:           "24h",
		}); err != nil {
			return fmt.Errorf("submit %s: %w", movie, err)
		}
	}

	// Stream the first movie's live view: every revision the answers
	// produce, pushed over SSE, ending with the terminal done event.
	fmt.Printf("watching %q:\n", movies[0])
	events, err := c.WatchQuery(ctx, movies[0])
	if err != nil {
		return err
	}
	for ev := range events {
		if ev.Err != nil {
			return ev.Err
		}
		fmt.Printf("  %-5s rev=%-2d progress=%5.1f%% items=%d\n",
			ev.Type, ev.ID, ev.State.Progress*100, ev.State.Items)
	}

	// Wait for everything to finish, then page through the list two at
	// a time via the auto-paginating iterator.
	if err := waitAllDone(ctx, c); err != nil {
		return err
	}
	fmt.Println("\nall jobs (iterator, page size 1):")
	for st, err := range c.Jobs(ctx, client.ListJobsOptions{Limit: 1}) {
		if err != nil {
			return err
		}
		fmt.Printf("  %-16s %-9s cost=%.2f\n", st.Name, st.State, st.Cost)
	}

	// Typed error envelopes: a miss is a *api.Error you can switch on.
	_, err = c.Job(ctx, "no such job")
	var apiErr *api.Error
	if errors.As(err, &apiErr) {
		fmt.Printf("\ntyped error for a missing job: code=%s status=%d\n", apiErr.Code, apiErr.Status)
	}

	// The deprecated pre-v1 routes still answer, flagged as such.
	resp, err := http.Get(base + "/api/queries")
	if err != nil {
		return err
	}
	resp.Body.Close()
	fmt.Printf("legacy /api/queries: %d with Deprecation: %s\n", resp.StatusCode, resp.Header.Get("Deprecation"))
	return nil
}

func waitAllDone(ctx context.Context, c *client.Client) error {
	for {
		page, err := c.ListJobs(ctx, client.ListJobsOptions{})
		if err != nil {
			return err
		}
		done := true
		for _, st := range page.Jobs {
			if !st.State.Terminal() {
				done = false
			}
		}
		if done {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}
