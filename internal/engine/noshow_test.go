package engine

import (
	"math"
	"testing"

	"cdas/internal/crowd"
)

// TestEngineResilientToNoShows: when a fraction of accepted assignments
// never arrives, the engine must still verify with the votes it received
// and only pay for delivered answers.
func TestEngineResilientToNoShows(t *testing.T) {
	cfg := crowd.DefaultConfig(31)
	cfg.Workers = 200
	cfg.NoShowFraction = 0.4
	sim, err := crowd.NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(CrowdPlatform{sim}, nil, Config{
		JobName:          "tsa",
		RequiredAccuracy: 0.9,
		SamplingRate:     0.2,
		HITSize:          20,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.ProcessBatch(makeQuestions("r", 8, "pos"), makeQuestions("g", 10, "neg"))
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedWorkers >= res.PlannedWorkers {
		t.Errorf("with 40%% no-shows used (%d) should fall below planned (%d)",
			res.UsedWorkers, res.PlannedWorkers)
	}
	if res.UsedWorkers == 0 {
		t.Fatal("no assignments delivered at all")
	}
	for _, qr := range res.Results {
		if qr.Answer == "" {
			t.Errorf("question %s left unanswered", qr.Question.ID)
		}
		if qr.Votes != res.UsedWorkers {
			t.Errorf("question %s votes=%d, want %d", qr.Question.ID, qr.Votes, res.UsedWorkers)
		}
	}
	fee := cfg.Economics.PerAssignment()
	if want := float64(res.UsedWorkers) * fee; math.Abs(res.Cost-want) > 1e-9 {
		t.Errorf("cost %v, want %v (pay only for deliveries)", res.Cost, want)
	}
}

// TestRepostShortfall: with RepostShortfall the engine republishes
// under-answered HITs until the planned count is reached.
func TestRepostShortfall(t *testing.T) {
	cfg := crowd.DefaultConfig(32)
	cfg.Workers = 300
	cfg.NoShowFraction = 0.4
	sim, err := crowd.NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(CrowdPlatform{sim}, nil, Config{
		JobName:          "tsa",
		RequiredAccuracy: 0.9,
		SamplingRate:     0.2,
		HITSize:          20,
		RepostShortfall:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.ProcessBatch(makeQuestions("r", 8, "pos"), makeQuestions("g", 10, "neg"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reposts == 0 {
		t.Error("40% no-shows should trigger at least one repost")
	}
	// Reposting should close most of the gap (never overshoot).
	if res.UsedWorkers > res.PlannedWorkers {
		t.Errorf("overshot: used %d > planned %d", res.UsedWorkers, res.PlannedWorkers)
	}
	if res.UsedWorkers < res.PlannedWorkers-2 {
		t.Errorf("reposts left a large gap: used %d of %d", res.UsedWorkers, res.PlannedWorkers)
	}
	fee := cfg.Economics.PerAssignment()
	if want := float64(res.UsedWorkers) * fee; math.Abs(res.Cost-want) > 1e-9 {
		t.Errorf("cost %v, want %v", res.Cost, want)
	}
}

// TestRepostOffByDefault: the default engine does not repost.
func TestRepostOffByDefault(t *testing.T) {
	cfg := crowd.DefaultConfig(33)
	cfg.Workers = 200
	cfg.NoShowFraction = 0.4
	sim, err := crowd.NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(CrowdPlatform{sim}, nil, Config{
		JobName: "tsa", HITSize: 20, SamplingRate: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.ProcessBatch(makeQuestions("r", 4, "pos"), makeQuestions("g", 10, "neg"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reposts != 0 {
		t.Errorf("reposts = %d without RepostShortfall", res.Reposts)
	}
}
