package exec

import (
	"fmt"
	"reflect"
	"testing"

	"cdas/internal/randx"
)

// TestFoldMatchesSummarise drives randomized outcome sequences through
// both the batch Summarise and the incremental Fold and requires
// bit-identical summaries — the contract that lets stream processors
// drop item texts after folding without changing any published result.
func TestFoldMatchesSummarise(t *testing.T) {
	domain := []string{"Positive", "Neutral", "Negative"}
	exclude := []string{"iPhone4S", "thor"}
	words := []string{"love", "hate", "great", "meh", "broken", "shiny", "thor", "iphone4s"}

	rng := randx.New(77)
	for trial := 0; trial < 50; trial++ {
		n := rng.IntN(40)
		outcomes := make([]Outcome, 0, n)
		texts := make(map[string]string, n)
		fold := NewFold(domain, exclude...)
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("it%03d", i)
			oc := Outcome{ItemID: id}
			switch rng.IntN(4) {
			case 0: // undecided: confidence mass over the domain (plus one stray)
				oc.Confidences = map[string]float64{
					domain[rng.IntN(len(domain))]: rng.Float64(),
					"NotInDomain":                 rng.Float64(),
				}
			case 1: // accepted answer outside the domain
				oc.Accepted = "Rogue"
				oc.Confidence = rng.Float64()
				oc.Quality = rng.Float64()
			default:
				oc.Accepted = domain[rng.IntN(len(domain))]
				oc.Confidence = rng.Float64()
				oc.Quality = rng.Float64()
			}
			text := ""
			if oc.Accepted != "" && rng.IntN(5) > 0 {
				text = words[rng.IntN(len(words))] + " " + words[rng.IntN(len(words))] + " so " + words[rng.IntN(len(words))]
				texts[id] = text
			}
			outcomes = append(outcomes, oc)
			fold.Observe(oc, text)
		}

		want := Summarise(domain, outcomes, texts, exclude...)
		got := fold.Summary()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: fold diverged from Summarise\nwant %#v\ngot  %#v", trial, want, got)
		}
		if fold.Items() != len(outcomes) {
			t.Fatalf("trial %d: fold.Items() = %d, want %d", trial, fold.Items(), len(outcomes))
		}
	}
}

// TestFoldEmpty pins the zero-observation rendering: all-zero
// percentages, no reasons, no confidence — exactly Summarise's.
func TestFoldEmpty(t *testing.T) {
	domain := []string{"a", "b"}
	want := Summarise(domain, nil, nil)
	got := NewFold(domain).Summary()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("empty fold diverged: want %#v, got %#v", want, got)
	}
}
