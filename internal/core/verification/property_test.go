package verification

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// Property: when every worker has the same accuracy a > 1/2, the
// probability-based verification model degenerates to majority voting —
// each vote carries the same weight, so confidences are ordered exactly
// by vote counts and the accepted answer is the plurality winner (ties
// broken by answer string, matching Verify's deterministic tie-break).
func TestEqualAccuraciesReduceToMajorityVoting(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xbeef, 11))
	domain := []string{"positive", "neutral", "negative", "mixed"}
	for trial := 0; trial < 500; trial++ {
		a := 0.51 + 0.48*rng.Float64()
		nVotes := 1 + rng.IntN(25)
		m := 2 + rng.IntN(4)
		votes := make([]Vote, nVotes)
		counts := make(map[string]int)
		for i := range votes {
			ans := domain[rng.IntN(min(len(domain), m))]
			votes[i] = Vote{Worker: fmt.Sprintf("w%d", i), Accuracy: a, Answer: ans}
			counts[ans]++
		}
		res, err := Verify(votes, m)
		if err != nil {
			t.Fatalf("Verify: %v", err)
		}

		// Plurality winner with lexicographic tie-break.
		var winner string
		for ans, c := range counts {
			if winner == "" || c > counts[winner] || (c == counts[winner] && ans < winner) {
				winner = ans
			}
		}
		if got := res.Best().Answer; got != winner {
			t.Fatalf("trial %d (a=%v, m=%d, counts=%v): accepted %q, majority says %q",
				trial, a, m, counts, got, winner)
		}

		// Full ranking must be ordered by vote count (desc), ties by
		// answer (asc).
		for i := 1; i < len(res.Ranked); i++ {
			prev, cur := res.Ranked[i-1], res.Ranked[i]
			if counts[prev.Answer] < counts[cur.Answer] {
				t.Fatalf("trial %d: ranking disagrees with counts: %q(%d votes) above %q(%d votes)",
					trial, prev.Answer, counts[prev.Answer], cur.Answer, counts[cur.Answer])
			}
			if counts[prev.Answer] == counts[cur.Answer] && prev.Answer > cur.Answer {
				t.Fatalf("trial %d: tie not broken lexicographically: %q above %q", trial, prev.Answer, cur.Answer)
			}
			// Same count ⇒ same weight sum ⇒ same confidence.
			if counts[prev.Answer] == counts[cur.Answer] && !closeEnough(prev.Confidence, cur.Confidence) {
				t.Fatalf("trial %d: equal counts, unequal confidences: %v vs %v",
					trial, prev.Confidence, cur.Confidence)
			}
		}
	}
}

// Property: confidences plus the unobserved mass always form a
// probability distribution, for arbitrary (unequal) accuracies too.
func TestConfidencesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xf00d, 3))
	domain := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 300; trial++ {
		nVotes := 1 + rng.IntN(30)
		m := 2 + rng.IntN(6)
		votes := make([]Vote, nVotes)
		for i := range votes {
			votes[i] = Vote{
				Worker:   fmt.Sprintf("w%d", i),
				Accuracy: 0.05 + 0.9*rng.Float64(), // weights may go negative: still a distribution
				Answer:   domain[rng.IntN(len(domain))],
			}
		}
		res, err := Verify(votes, m)
		if err != nil {
			t.Fatal(err)
		}
		sum := res.UnobservedMass
		for _, s := range res.Ranked {
			if s.Confidence < 0 || s.Confidence > 1 {
				t.Fatalf("trial %d: confidence %v outside [0,1]", trial, s.Confidence)
			}
			sum += s.Confidence
		}
		if !closeEnough(sum, 1) {
			t.Fatalf("trial %d: confidences+unobserved sum to %v", trial, sum)
		}
	}
}

func closeEnough(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
