// Engine detection: which store formats live in a directory. The job
// service uses this to refuse a boot that would silently shadow an
// existing store — the engines' file sets are disjoint, so pointing
// the LSM engine at a WAL-engine directory "works" but starts empty,
// which after the default flip to lsm would look like data loss.
package jobstore

import (
	"os"
	"path/filepath"
	"strings"
)

// DetectEngines reports which engines have persisted state in dir: wal
// for the append-only Log (wal.dat / snapshot.dat), lsm for the LSM
// store (MANIFEST / WAL segments). A missing directory has neither.
func DetectEngines(dir string) (wal, lsm bool) {
	if fi, err := os.Stat(filepath.Join(dir, walName)); err == nil && fi.Size() > 0 {
		wal = true
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err == nil {
		wal = true
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		lsm = true
	}
	if fi, err := os.Stat(filepath.Join(dir, lsmWALName)); err == nil && fi.Size() > 0 {
		lsm = true
	}
	if !lsm {
		entries, err := os.ReadDir(dir)
		if err == nil {
			for _, de := range entries {
				if _, ok := parseSegmentName(de.Name()); !ok {
					continue
				}
				if fi, err := de.Info(); err == nil && fi.Size() > 0 {
					lsm = true
					break
				}
			}
		}
	}
	return wal, lsm
}

// RetireLogFiles renames the Log engine's files out of the engine's
// file set (wal.dat → wal.dat.retired, likewise the snapshot), so
// DetectEngines stops reporting a WAL store while the bytes stay on
// disk for rollback. Renaming back restores the store unchanged. The
// returned list names the retired files.
func RetireLogFiles(dir string) ([]string, error) {
	var retired []string
	for _, name := range []string{walName, snapshotName} {
		src := filepath.Join(dir, name)
		if _, err := os.Stat(src); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return retired, err
		}
		dst := src + ".retired"
		if err := os.Rename(src, dst); err != nil {
			return retired, err
		}
		retired = append(retired, dst)
	}
	return retired, nil
}

// RemoveLSMFiles deletes every LSM-engine file in dir (manifest, runs,
// WAL segments, lock and temp files), leaving Log-engine files alone.
// The migrator uses it to restart cleanly after an interrupted
// conversion, while the WAL store is still the authority.
func RemoveLSMFiles(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, de := range entries {
		name := de.Name()
		isRun := strings.HasPrefix(name, "run-") && strings.HasSuffix(name, ".run")
		_, isSeg := parseSegmentName(name)
		switch {
		case isRun, isSeg:
		case name == manifestName, name == manifestTmpName:
		case name == runTmpName, name == lsmWALName, name == lsmLockName:
		default:
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}
