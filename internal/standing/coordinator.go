// Window-barrier coordinator: standing queries tick a scheduler
// generation per window close instead of relying on a caller Flush.
// Every live stream closes its windows in index order and ticks the
// barrier exactly once per close, so generation g carries every live
// stream's window-g batches — overlapping standing queries land in the
// same generation and their identical questions dedup and share cost,
// exactly like concurrent batch jobs.
package standing

import (
	"context"
	"sync"
	"time"
)

// Flusher is the scheduler surface the coordinator drives; satisfied by
// *scheduler.Scheduler.
type Flusher interface {
	Flush(ctx context.Context) error
}

// Coordinator aligns stream window closes into scheduler generations.
// Closed-loop runs (Deadline 0) wait for the full barrier — every
// registered live member, with at least Expect members having joined —
// which makes generation composition, and therefore every scheduler
// and engine decision, bit-deterministic. Live runs set a Deadline so
// one slow stream cannot stall every other's window close: the timer
// force-flushes and stragglers ride the next generation.
type Coordinator struct {
	sched    Flusher
	deadline time.Duration

	mu       sync.Mutex
	members  map[string]bool // registered live streams; true = ticked this generation
	finished int             // streams that registered and later deregistered
	expect   int             // barrier floor: members + finished must reach it
	gen      int
	genCh    chan struct{} // closed when the current generation fires
	timer    *time.Timer
}

// NewCoordinator builds a coordinator over the scheduler. deadline 0
// requires the full barrier (closed-loop determinism); a positive
// deadline bounds how long the first arrival of a generation waits
// before the flush is forced.
func NewCoordinator(sched Flusher, deadline time.Duration) *Coordinator {
	return &Coordinator{
		sched:    sched,
		deadline: deadline,
		members:  make(map[string]bool),
		genCh:    make(chan struct{}),
	}
}

// Expect sets the barrier floor: no generation fires until this many
// streams have registered (live or already finished). Loadgen's
// closed-loop mode sets it to the stream count before submitting, so an
// early stream cannot flush a generation alone while the rest are still
// being submitted.
func (c *Coordinator) Expect(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expect = n
}

// Register joins a stream to the barrier. Registering an already-live
// name is a no-op.
func (c *Coordinator) Register(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, live := c.members[name]; !live {
		c.members[name] = false
	}
}

// Deregister removes a finished (or failed) stream and re-evaluates the
// barrier — the remaining members must not wait on a stream that will
// never tick again.
func (c *Coordinator) Deregister(name string) {
	c.mu.Lock()
	if _, live := c.members[name]; !live {
		c.mu.Unlock()
		return
	}
	delete(c.members, name)
	c.finished++
	fire := c.barrierReadyLocked()
	c.mu.Unlock()
	if fire {
		c.fire(context.Background())
	}
}

// barrierReadyLocked reports whether the current generation should
// fire: at least one live member, every live member ticked, and the
// Expect floor reached.
func (c *Coordinator) barrierReadyLocked() bool {
	if len(c.members) == 0 {
		return false
	}
	if len(c.members)+c.finished < c.expect {
		return false
	}
	for _, ticked := range c.members {
		if !ticked {
			return false
		}
	}
	return true
}

// Tick marks the stream's window close and blocks until its generation
// flushes. The caller must have enqueued the window's scheduler
// requests before ticking — the flush this tick joins resolves them.
func (c *Coordinator) Tick(ctx context.Context, name string) error {
	c.mu.Lock()
	if _, live := c.members[name]; !live {
		// An unregistered tick (or a deregistered straggler) flushes
		// alone rather than deadlocking the barrier.
		c.mu.Unlock()
		return c.sched.Flush(ctx)
	}
	c.members[name] = true
	ch := c.genCh
	if c.barrierReadyLocked() {
		c.mu.Unlock()
		c.fire(ctx)
		return nil
	}
	if c.deadline > 0 && c.timer == nil {
		c.timer = time.AfterFunc(c.deadline, func() { c.fire(context.Background()) })
	}
	c.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		// Withdraw the arrival so the generation doesn't count a tick
		// whose stream is unwinding.
		c.mu.Lock()
		if _, live := c.members[name]; live {
			c.members[name] = false
		}
		c.mu.Unlock()
		return ctx.Err()
	}
}

// fire advances the generation: arrivals are reset under the lock (late
// ticks belong to the next generation), the scheduler flush runs
// outside it (crowd work is slow), and only then are this generation's
// waiters released — a released waiter may immediately enqueue its next
// window, which must not race into the generation being flushed.
func (c *Coordinator) fire(ctx context.Context) {
	c.mu.Lock()
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	ch := c.genCh
	select {
	case <-ch:
		// A concurrent fire already advanced this generation.
		c.mu.Unlock()
		return
	default:
	}
	c.gen++
	c.genCh = make(chan struct{})
	for name := range c.members {
		c.members[name] = false
	}
	c.mu.Unlock()
	_ = c.sched.Flush(ctx) // ticket errors surface through Ticket.Wait
	close(ch)
}

// Generation reports how many generations have fired (a test probe).
func (c *Coordinator) Generation() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}
