// Package scheduler implements the cross-query crowd scheduler: the
// layer between the job dispatcher and the crowdsourcing engine that
// makes many concurrent analytics queries share one crowd.
//
// CDAS batches questions into HITs to amortise cost for a single query
// (Section 3.1); at service scale the dominant levers are cross-query —
// identical questions asked by different tenants should be purchased
// once, and the crowd's capacity and the operator's money are global
// resources. The scheduler therefore:
//
//   - coalesces questions from concurrently enqueued jobs into shared
//     HIT batches, grouped by canonical answer-domain and published
//     under content-derived canonical IDs, with every verified answer
//     fanned back out to all subscribing jobs;
//   - consults a verified-answer cache (confidence + TTL) before
//     publishing anything, so repeated questions across time are free;
//   - enforces per-job and global budget limits with priority-aware
//     admission: a job that doesn't fit the remaining budget is parked
//     (ErrParked), not failed — the jobs layer keeps it in a resumable
//     Parked state.
//
// Determinism: a flush generation's batch composition is a pure function
// of the set of enqueued questions — tickets are admitted in (priority,
// job name) order and each domain group's unique questions are sorted by
// canonical key before chunking — and each domain group runs on its own
// engine whose HIT IDs and seeds derive from the domain key, never from
// arrival order. For a fixed seed, a generation's results are bit-equal
// across runs and across however many goroutines enqueued the work.
package scheduler

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cdas/internal/core/aggregate"
	"cdas/internal/core/prediction"
	"cdas/internal/core/verification"
	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/metrics"
	"cdas/internal/profile"
)

// ErrParked reports that admission denied a job for budget reasons; the
// job should be parked (kept, resumable) rather than failed.
var ErrParked = errors.New("scheduler: job parked: budget exhausted")

// ErrClosed reports an enqueue or flush on a closed scheduler.
var ErrClosed = errors.New("scheduler: closed")

// ErrAbandoned reports a ticket whose job withdrew (Ticket.Abandon)
// before its generation flushed — typically a cancelled job.
var ErrAbandoned = errors.New("scheduler: ticket abandoned")

// Config wires a Scheduler.
type Config struct {
	// Platform hosts the published shared HITs. Required.
	Platform engine.Platform
	// Engine is the per-domain engine template. JobName and Seed are
	// overridden per domain group; everything else is taken as-is. In
	// particular RequiredAccuracy is the service-level guarantee every
	// shared question is verified to — cross-query sharing means one
	// verification standard per deployment, not per job.
	Engine engine.Config
	// Golden is the ground-truth pool injected into shared HITs for
	// accuracy sampling. Required unless Engine.DisableSampling.
	Golden []crowd.Question
	// GlobalBudget caps total crowd spend across all jobs (0 =
	// unlimited). Per-job caps arrive with each Request.
	GlobalBudget float64
	// Economics prices the admission estimate (default the paper's fee
	// schedule). Actual charges always come from the platform.
	Economics prediction.Economics
	// DisableDedup turns off cross-query coalescing and the answer
	// cache: every job's questions are published separately, as if each
	// job drove its own engine. Budget accounting still applies.
	DisableDedup bool
	// CacheTTL expires cached answers (0 = never — the deterministic
	// setting for simulations).
	CacheTTL time.Duration
	// Now is the cache clock (default time.Now); inject a fixed clock
	// for deterministic runs.
	Now func() time.Time
	// FlushInterval, when positive, starts a background loop flushing
	// pending work every interval — the setting for a live server.
	// Leave zero for deterministic manual flushing.
	FlushInterval time.Duration
	// OnCharge, when set, is called once per job per generation with
	// the job's attributed crowd spend — the persistence hook
	// (jobs.Service.ChargeBudget) that makes budget state survive WAL
	// replay.
	OnCharge func(job string, amount float64)
	// Counters, when set, receives cache hit/miss, dedup, batch and
	// parking counters.
	Counters *metrics.Registry
}

// Request is one job's unit of scheduling: its full question set plus
// admission parameters.
type Request struct {
	// Job names the submitting job; charges and parking decisions are
	// recorded against it.
	Job string
	// Priority orders admission when budget is scarce: higher admits
	// first; ties break by job name.
	Priority int
	// Budget caps this job's total crowd spend (0 = unlimited).
	Budget float64
	// Aggregator names the answer-aggregation method (aggregate
	// registry) this job's questions are verified with. Empty or
	// aggregate.DefaultName selects the engine template's default, the
	// CDAS probability model. Non-default methods schedule under
	// aggregator-qualified dedup keys: their questions never coalesce
	// with — and their cached verdicts are never served to — jobs using
	// a different method.
	Aggregator string
	// Questions is the job's question set. IDs must be unique within
	// the request.
	Questions []crowd.Question
}

// JobResult is the scheduler's answer to one request.
type JobResult struct {
	// Results holds one verdict per submitted question, sorted by the
	// submitted question ID, with the job's original Question restored
	// (the crowd saw the canonical form).
	Results []engine.QuestionResult
	// Cost is the job's attributed share of crowd spend: each published
	// question's cost is split evenly across its subscribing jobs;
	// cache hits are free.
	Cost float64
	// CacheHits counts questions answered from the cache.
	CacheHits int
	// Shared counts questions that rode a slot with at least one other
	// subscriber (dedup wins beyond the cache).
	Shared int
	// Published counts questions this job was first subscriber for.
	Published int
}

// slotRef is a question's precomputed identity: dedup key, domain key
// and the slot key it schedules under. Computed once at Enqueue — the
// SHA-256 canonicalisation is the flush path's hottest work and must
// not be repeated across the dry-run and real planning passes.
type slotRef struct {
	key, dk, slotKey string
}

// Ticket is a job's handle on in-flight scheduling. Wait blocks until
// the request's generation flushes.
type Ticket struct {
	req       Request
	keys      []slotRef // parallel to req.Questions
	done      chan struct{}
	abandoned atomic.Bool

	// accumulated under the owning scheduler's flush; immutable after
	// done closes.
	res JobResult
	err error
}

// Wait blocks until the request resolves or ctx is done. A parked job
// surfaces ErrParked. On an engine failure the partial result (cache
// hits and surviving domain groups, with their attributed cost) is
// returned alongside the error.
func (t *Ticket) Wait(ctx context.Context) (JobResult, error) {
	select {
	case <-t.done:
		return t.res, t.err
	case <-ctx.Done():
		return JobResult{}, ctx.Err()
	}
}

// Abandon withdraws the ticket: a still-queued ticket is skipped (and
// resolved with ErrAbandoned) at its generation's flush instead of
// publishing — and paying for — questions its job will never read.
// The cancellation path for jobs whose runner has already enqueued.
// Abandoning an admitted or resolved ticket has no effect.
func (t *Ticket) Abandon() { t.abandoned.Store(true) }

// State is the scheduler's reportable state (GET /api/scheduler).
type State struct {
	Generations        int            `json:"generations"`
	PendingJobs        int            `json:"pending_jobs"`
	DedupEnabled       bool           `json:"dedup_enabled"`
	CacheEntries       int            `json:"cache_entries"`
	CacheHits          int64          `json:"cache_hits"`
	CacheMisses        int64          `json:"cache_misses"`
	QuestionsEnqueued  int64          `json:"questions_enqueued"`
	QuestionsPublished int64          `json:"questions_published"`
	QuestionsDeduped   int64          `json:"questions_deduped"`
	BatchesPublished   int64          `json:"batches_published"`
	JobsAdmitted       int64          `json:"jobs_admitted"`
	JobsParked         int64          `json:"jobs_parked"`
	Budget             BudgetSnapshot `json:"budget"`
}

// Scheduler is the cross-query crowd scheduler. It is safe for
// concurrent use.
type Scheduler struct {
	cfg    Config
	store  *profile.Store
	cache  *AnswerCache
	ledger *Ledger

	// estHITCost and estSlots price admission estimates: one planned
	// HIT's worker fees and the real questions it carries, fixed at
	// construction from the engine template. serviceAccuracy is the
	// template's effective RequiredAccuracy.
	estHITCost      float64
	estSlots        int
	serviceAccuracy float64

	// flushMu serialises generations; mu guards the queue and stats
	// underneath it. The domain-engine map lives behind its own lock
	// (enginesMu) so building an engine mid-flush — prediction-model
	// planning included — never blocks Enqueue or State callers, which
	// only need mu.
	flushMu   sync.Mutex
	mu        sync.Mutex
	pending   []*Ticket
	stats     State
	closed    bool
	enginesMu sync.Mutex
	engines   map[string]*engine.Engine
	stopBg    context.CancelFunc
	bgDone    chan struct{}
}

// New builds a Scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Platform == nil {
		return nil, errors.New("scheduler: platform is required")
	}
	if err := cfg.Engine.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Engine.DisableSampling && len(cfg.Golden) == 0 {
		return nil, errors.New("scheduler: golden pool required unless sampling is disabled")
	}
	if cfg.GlobalBudget < 0 {
		return nil, fmt.Errorf("scheduler: global budget must be >= 0, got %v", cfg.GlobalBudget)
	}
	if cfg.Economics == (prediction.Economics{}) {
		cfg.Economics = prediction.DefaultEconomics
	}
	if err := cfg.Economics.Validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:     cfg,
		store:   profile.NewStore(),
		cache:   NewAnswerCache(cfg.CacheTTL, cfg.Now),
		ledger:  NewLedger(cfg.GlobalBudget),
		engines: make(map[string]*engine.Engine),
	}
	s.stats.DedupEnabled = !cfg.DisableDedup
	// Price the admission estimate once: a planned HIT's fees and
	// capacity are fixed by the template (the prediction model's n at
	// the fallback population mean).
	probe, err := engine.New(cfg.Platform, s.store, cfg.Engine)
	if err != nil {
		return nil, err
	}
	workers, err := probe.PlanWorkers()
	if err != nil {
		workers = probe.Config().MaxWorkers
	}
	s.estHITCost = cfg.Economics.PerAssignment() * float64(workers)
	if s.estSlots = probe.RealSlots(); s.estSlots < 1 {
		s.estSlots = 1
	}
	s.serviceAccuracy = probe.Config().RequiredAccuracy
	if cfg.FlushInterval > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		s.stopBg = cancel
		s.bgDone = make(chan struct{})
		go s.flushLoop(ctx, cfg.FlushInterval)
	}
	return s, nil
}

// Ledger exposes the budget ledger (e.g. to restore persisted spend).
func (s *Scheduler) Ledger() *Ledger { return s.ledger }

// SlotsPerHIT reports the engine template's real (non-golden) question
// slots per HIT — the natural batch quantum for callers sizing their
// enqueues, e.g. the standing-query adaptive batcher clamping to it.
func (s *Scheduler) SlotsPerHIT() int { return s.estSlots }

// HITPrice reports the configured economics' price of publishing one
// HIT (per-assignment price x planned workers): the batch cost the
// enumeration runner weighs against expected discovery yield in the
// ledger's marginal-value admission.
func (s *Scheduler) HITPrice() float64 { return s.estHITCost }

// ServiceAccuracy reports the verification level every shared question
// is held to: the engine template's effective RequiredAccuracy. Runners
// gate per-job accuracy demands against it — one verification standard
// per deployment is the price of cross-query sharing.
func (s *Scheduler) ServiceAccuracy() float64 { return s.serviceAccuracy }

// Enqueue registers a job's question set for the next flush generation
// and returns its ticket. It never blocks on crowd work.
func (s *Scheduler) Enqueue(req Request) (*Ticket, error) {
	if req.Job == "" {
		return nil, errors.New("scheduler: request needs a job name")
	}
	if req.Budget < 0 || math.IsNaN(req.Budget) {
		return nil, fmt.Errorf("scheduler: job budget must be >= 0, got %v", req.Budget)
	}
	if len(req.Questions) == 0 {
		return nil, errors.New("scheduler: request needs at least one question")
	}
	if err := aggregate.Validate(req.Aggregator); err != nil {
		return nil, fmt.Errorf("scheduler: %w", err)
	}
	// The default method keeps the bare canonical keys (bit-compatible
	// with every cached answer and seed derived before aggregators were
	// selectable); non-default methods get a qualified key space.
	aggPrefix := ""
	if agg := req.Aggregator; agg != "" && agg != aggregate.DefaultName {
		aggPrefix = "agg/" + agg + "/"
	}
	keys := make([]slotRef, len(req.Questions))
	ids := make(map[string]struct{}, len(req.Questions))
	for i, q := range req.Questions {
		if q.ID == "" {
			return nil, errors.New("scheduler: question needs an ID")
		}
		if _, dup := ids[q.ID]; dup {
			return nil, fmt.Errorf("scheduler: duplicate question id %q in request", q.ID)
		}
		ids[q.ID] = struct{}{}
		if len(q.Domain) < 2 {
			return nil, fmt.Errorf("scheduler: question %q needs a domain of >= 2 answers", q.ID)
		}
		ref := slotRef{key: aggPrefix + QuestionKey(q), dk: aggPrefix + DomainKey(q.Domain)}
		ref.slotKey = ref.key
		if s.cfg.DisableDedup {
			// Job- and ID-qualified: no coalescing at all, neither
			// across jobs nor between same-content questions of one
			// request — each enqueued question is its own publish.
			ref.slotKey = ref.dk + "/" + hashStrings([]string{req.Job, q.ID, ref.key})
		}
		keys[i] = ref
	}
	t := &Ticket{req: req, keys: keys, done: make(chan struct{})}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.pending = append(s.pending, t)
	s.stats.PendingJobs = len(s.pending)
	s.stats.QuestionsEnqueued += int64(len(req.Questions))
	return t, nil
}

// slot is one unit of crowd work in a generation: a canonical question
// and the subscribers awaiting its answer.
type slot struct {
	key   string // dedup key (job-qualified when dedup is off)
	canon crowd.Question
	subs  []subscriber
}

type subscriber struct {
	ticket *Ticket
	orig   crowd.Question
}

// group is one domain's slots in a generation.
type group struct {
	domainKey string
	slots     map[string]*slot
}

// Flush runs one generation: admit pending jobs against the budget in
// priority order, resolve cache hits, coalesce the rest into shared
// per-domain batches, run them, and fan results out. Tickets enqueued
// during a flush wait for the next one. Flush returns the first engine
// error (affected tickets also carry it); budget parking is not an
// error.
func (s *Scheduler) Flush(ctx context.Context) error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	tickets := s.pending
	s.pending = nil
	s.stats.PendingJobs = 0
	s.stats.Generations++
	s.mu.Unlock()
	// Abandoned tickets (cancelled jobs) resolve without publishing —
	// their questions must not be purchased for a reader that is gone.
	live := tickets[:0]
	for _, t := range tickets {
		if t.abandoned.Load() {
			t.err = ErrAbandoned
			close(t.done)
			continue
		}
		live = append(live, t)
	}
	tickets = live
	if len(tickets) == 0 {
		return nil
	}

	// Deterministic admission order: priority first, then job name.
	sort.SliceStable(tickets, func(i, j int) bool {
		if tickets[i].req.Priority != tickets[j].req.Priority {
			return tickets[i].req.Priority > tickets[j].req.Priority
		}
		return tickets[i].req.Job < tickets[j].req.Job
	})

	groups := make(map[string]*group)
	var tally genTally
	var admitted []*Ticket
	var reserved float64                    // budget promised to peers admitted this round
	jobReserved := make(map[string]float64) // ...and the per-job share of it
	for _, t := range tickets {
		// Unconditional: a Budget of 0 means unlimited and must clear
		// any cap a previous request set for this job name.
		s.ledger.SetJobLimit(t.req.Job, t.req.Budget)
		newWork, shared := s.plan(groups, t, true, &tally)
		est := s.estimate(newWork, shared)
		if !s.ledger.Admissible(t.req.Job, est, reserved, jobReserved[t.req.Job]) {
			tally.parked++
			t.err = fmt.Errorf("%w (job %q, estimated %.3f more)", ErrParked, t.req.Job, est)
			close(t.done)
			continue
		}
		s.plan(groups, t, false, &tally)
		reserved += est
		jobReserved[t.req.Job] += est
		admitted = append(admitted, t)
		tally.admitted++
	}

	firstErr := s.runGroups(ctx, groups, &tally)
	s.applyTally(tally)

	for _, t := range admitted {
		if t.err == nil && firstErr != nil && len(t.res.Results) < len(t.req.Questions) {
			// Safety net: runGroup attributes failures to the affected
			// subscribers precisely; this catches only a short-resulted
			// ticket that somehow escaped the per-batch marking.
			t.err = firstErr
		}
		sort.Slice(t.res.Results, func(i, j int) bool {
			return t.res.Results[i].Question.ID < t.res.Results[j].Question.ID
		})
		if s.cfg.OnCharge != nil && t.res.Cost > 0 {
			s.cfg.OnCharge(t.req.Job, t.res.Cost)
		}
		s.ledger.Charge(t.req.Job, t.res.Cost)
		close(t.done)
	}
	return firstErr
}

// genTally accumulates one flush's statistics locally, applied to the
// shared stats and the counter registry in one pass at the end — the
// plan and fan-out loops must not take a lock per question.
type genTally struct {
	cacheHits, cacheMisses      int64
	published, deduped, batches int64
	admitted, parked            int64
}

// applyTally folds one generation's tally into the shared stats and
// the metrics registry.
func (s *Scheduler) applyTally(tl genTally) {
	s.mu.Lock()
	s.stats.CacheHits += tl.cacheHits
	s.stats.CacheMisses += tl.cacheMisses
	s.stats.QuestionsPublished += tl.published
	s.stats.QuestionsDeduped += tl.deduped
	s.stats.BatchesPublished += tl.batches
	s.stats.JobsAdmitted += tl.admitted
	s.stats.JobsParked += tl.parked
	s.mu.Unlock()
	s.count(metrics.CounterSchedCacheHits, tl.cacheHits)
	s.count(metrics.CounterSchedCacheMisses, tl.cacheMisses)
	s.count(metrics.CounterSchedPublished, tl.published)
	s.count(metrics.CounterSchedDeduped, tl.deduped)
	s.count(metrics.CounterSchedBatches, tl.batches)
	s.count(metrics.CounterSchedParked, tl.parked)
}

// plan walks a ticket's questions against the cache and the generation's
// groups. In dryRun mode it only counts the work the ticket would add —
// fresh publishes per domain key, plus rides on slots peers already
// opened this generation (those carry a cost share too) — without
// touching any state; otherwise it records cache hits on the ticket and
// subscribes it to slots. Tickets must be planned in admission order
// for the dedup credit to be deterministic.
func (s *Scheduler) plan(groups map[string]*group, t *Ticket, dryRun bool, tl *genTally) (map[string]int, int) {
	newWork := make(map[string]int)
	shared := 0
	// planned de-duplicates within this request during the dry run,
	// when slots are not yet created: k same-keyed questions in one
	// request are one publish, and must be estimated as one.
	planned := make(map[string]struct{})
	for i, q := range t.req.Questions {
		ref := t.keys[i]
		if !s.cfg.DisableDedup {
			if hit, ok := s.cache.Get(ref.key); ok {
				if !dryRun {
					t.res.CacheHits++
					t.res.Results = append(t.res.Results, engine.QuestionResult{
						Question:   q,
						Answer:     MapAnswer(hit.Answer, q.Domain),
						Confidence: hit.Confidence,
						Votes:      hit.Votes,
					})
					tl.cacheHits++
				}
				continue
			}
			if !dryRun {
				tl.cacheMisses++
			}
		}
		g := groups[ref.dk]
		if g == nil {
			g = &group{domainKey: ref.dk, slots: make(map[string]*slot)}
			groups[ref.dk] = g
		}
		sl, exists := g.slots[ref.slotKey]
		if !exists {
			if dryRun {
				if _, dup := planned[ref.slotKey]; !dup {
					planned[ref.slotKey] = struct{}{}
					newWork[ref.dk]++
				} else {
					shared++ // duplicate within the request rides its own first copy
				}
				continue
			}
			newWork[ref.dk]++
			canon := q
			canon.ID = CanonicalID(ref.slotKey)
			sl = &slot{key: ref.slotKey, canon: canon}
			g.slots[ref.slotKey] = sl
		} else {
			shared++ // rides a slot a peer opened this generation
		}
		if !dryRun {
			sl.subs = append(sl.subs, subscriber{ticket: t, orig: q})
		}
	}
	return newWork, shared
}

// estimate prices a ticket's admission: fresh questions are charged per
// whole HIT — ceil(n/slots) planned HITs per domain group — and rides
// on peers' already-opened slots at the full per-question rate (the
// actual charge is a share of that, but a deduplicated ride is charged
// real money and must not admit for free past a budget cap). A HIT's
// fees are per worker, not per question, so a batch far from full costs
// the same as a full one; pricing by the ceiling keeps the estimate an
// upper bound on the job's attributed spend when it ends up batching
// alone, which is exactly the case a budget cap must survive. Only
// cache hits are estimated (and charged) as free.
func (s *Scheduler) estimate(newWork map[string]int, shared int) float64 {
	est := s.estHITCost / float64(s.estSlots) * float64(shared)
	for _, n := range newWork {
		if n > 0 {
			est += s.estHITCost * float64((n+s.estSlots-1)/s.estSlots)
		}
	}
	return est
}

// groupOutcome is one domain group's drained crowd output, handed from
// the concurrent collection phase to the sequential fan-out phase.
type groupOutcome struct {
	g       *group
	ordered []*slot          // slots sorted by canonical key
	byID    map[string]*slot // canonical question ID -> slot
	perHIT  int              // real slots per HIT (chunking unit)
	results map[int]engine.StreamResult
	err     error // engine construction or stream-start failure
}

// runGroups executes every domain group and fans results out to
// subscribers, returning the first engine error (by sorted domain
// order). The crowd work — publishing HITs and draining assignments —
// runs concurrently across groups: each group owns a distinct engine,
// profile-store job and HIT namespace, so groups only meet at the
// lock-striped store and the platform's atomic accounting. Fan-out
// stays strictly sequential in sorted domain order because it mutates
// tickets shared across groups and accumulates floating-point cost,
// where order changes bits; collecting first and distributing second
// keeps results bit-equal to the old fully-serial path.
func (s *Scheduler) runGroups(ctx context.Context, groups map[string]*group, tl *genTally) error {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	outcomes := make([]*groupOutcome, len(keys))
	var wg sync.WaitGroup
	for i, dk := range keys {
		g := groups[dk]
		if len(g.slots) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, g *group) {
			defer wg.Done()
			outcomes[i] = s.collectGroup(ctx, g)
		}(i, g)
	}
	wg.Wait()
	var firstErr error
	for _, oc := range outcomes {
		if oc == nil {
			continue
		}
		if err := s.distributeGroup(oc, tl); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// collectGroup publishes one domain group's unique questions (sorted by
// canonical key, so batch composition is arrival-order independent)
// through the domain's engine and drains the stream completely. It
// touches no cross-group state beyond the engine/platform/store layers,
// which are concurrency-safe, so collectGroup calls may run in
// parallel.
func (s *Scheduler) collectGroup(ctx context.Context, g *group) *groupOutcome {
	oc := &groupOutcome{g: g}
	oc.ordered = make([]*slot, 0, len(g.slots))
	for _, sl := range g.slots {
		oc.ordered = append(oc.ordered, sl)
	}
	sort.Slice(oc.ordered, func(i, j int) bool { return oc.ordered[i].key < oc.ordered[j].key })
	questions := make([]crowd.Question, len(oc.ordered))
	oc.byID = make(map[string]*slot, len(oc.ordered))
	for i, sl := range oc.ordered {
		questions[i] = sl.canon
		oc.byID[sl.canon.ID] = sl
	}
	eng, err := s.engine(g.domainKey)
	if err != nil {
		oc.err = err
		return oc
	}
	oc.perHIT = eng.RealSlots()
	ch, err := eng.Stream(ctx, questions, s.cfg.Golden)
	if err != nil {
		oc.err = err
		return oc
	}
	// Drain completely; distribution happens later in batch-index order,
	// because completion order varies run to run and result fan-out must
	// not — floating-point cost accumulation is order-sensitive, and the
	// determinism guarantee covers every bit of a JobResult.
	oc.results = make(map[int]engine.StreamResult)
	for sr := range ch {
		oc.results[sr.Index] = sr
	}
	return oc
}

// distributeGroup fans one collected group's answers, cost shares and
// failures out to subscribers in batch-index order. A batch that failed
// marks exactly its own slots' subscribers with the error, while every
// completed batch's answers and spend are distributed regardless — the
// crowd was paid, so the ledger and the job records must say so.
// Callers invoke it sequentially, in sorted domain order.
func (s *Scheduler) distributeGroup(oc *groupOutcome, tl *genTally) error {
	failSlots := func(slots []*slot, err error) {
		for _, sl := range slots {
			for _, sub := range sl.subs {
				if sub.ticket.err == nil {
					sub.ticket.err = fmt.Errorf("scheduler: domain group %s: %w", oc.g.domainKey, err)
				}
			}
		}
	}
	if oc.err != nil {
		failSlots(oc.ordered, oc.err)
		return oc.err
	}
	ordered, byID := oc.ordered, oc.byID
	indices := make([]int, 0, len(oc.results))
	for i := range oc.results {
		indices = append(indices, i)
	}
	sort.Ints(indices)
	perHIT := oc.perHIT
	var firstErr error
	for _, idx := range indices {
		sr := oc.results[idx]
		if sr.Err != nil {
			if firstErr == nil {
				firstErr = sr.Err
			}
			// Batch i covers the i-th chunk of the sorted slots: fail
			// exactly those subscribers, nobody else's.
			start := min(sr.Index*perHIT, len(ordered))
			end := min(start+perHIT, len(ordered))
			failSlots(ordered[start:end], sr.Err)
			continue
		}
		br := sr.Batch
		tl.batches++
		tl.published += int64(len(br.Results))
		share := 0.0
		if len(br.Results) > 0 {
			share = br.Cost / float64(len(br.Results))
		}
		for _, qr := range br.Results {
			sl, ok := byID[qr.Question.ID]
			if !ok {
				continue
			}
			if !s.cfg.DisableDedup {
				s.cache.Put(sl.key, qr.Answer, qr.Confidence, qr.Votes)
			}
			if n := len(sl.subs) - 1; n > 0 {
				tl.deduped += int64(n)
			}
			subShare := share / float64(len(sl.subs))
			for i, sub := range sl.subs {
				out := qr
				out.Question = sub.orig
				// Translate the verdict into the subscriber's own domain
				// spelling — the crowd saw the canonical form.
				out.Answer = MapAnswer(qr.Answer, sub.orig.Domain)
				if len(qr.Ranked) > 0 {
					ranked := make([]verification.Scored, len(qr.Ranked))
					for r, sc := range qr.Ranked {
						sc.Answer = MapAnswer(sc.Answer, sub.orig.Domain)
						ranked[r] = sc
					}
					out.Ranked = ranked
				}
				sub.ticket.res.Results = append(sub.ticket.res.Results, out)
				sub.ticket.res.Cost += subShare
				if i == 0 {
					sub.ticket.res.Published++
				} else {
					sub.ticket.res.Shared++
				}
			}
		}
	}
	return firstErr
}

// engine returns (creating if needed) the domain group's engine: named
// and seeded from the domain key alone, sharing the scheduler's profile
// store, so its HIT identities are independent of which jobs fed it.
// An aggregator-qualified domain key ("agg/<name>/<hash>") additionally
// selects that aggregation method on the group's engine — the template
// default otherwise. Engines live behind their own lock so concurrent
// group collection — and the prediction-model work inside engine.New —
// never contends with Enqueue or State.
func (s *Scheduler) engine(domainKey string) (*engine.Engine, error) {
	s.enginesMu.Lock()
	defer s.enginesMu.Unlock()
	if eng, ok := s.engines[domainKey]; ok {
		return eng, nil
	}
	cfg := s.cfg.Engine
	cfg.JobName = "sched/" + domainKey
	if rest, ok := strings.CutPrefix(domainKey, "agg/"); ok {
		if name, _, ok := strings.Cut(rest, "/"); ok {
			cfg.Aggregator = name
		}
	}
	h := fnv.New64a()
	h.Write([]byte(domainKey))
	cfg.Seed ^= h.Sum64()
	eng, err := engine.New(s.cfg.Platform, s.store, cfg)
	if err != nil {
		return nil, err
	}
	s.engines[domainKey] = eng
	return eng, nil
}

// State snapshots the scheduler's reportable state.
func (s *Scheduler) State() State {
	s.mu.Lock()
	st := s.stats
	st.PendingJobs = len(s.pending)
	s.mu.Unlock()
	st.CacheEntries = s.cache.Len()
	st.Budget = s.ledger.Snapshot()
	return st
}

// Close stops the background flush loop (if any) and rejects further
// enqueues. Pending tickets are failed with ErrClosed so no waiter
// blocks forever. Close is idempotent.
func (s *Scheduler) Close() {
	if s.stopBg != nil {
		s.stopBg()
		<-s.bgDone
	}
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	pending := s.pending
	s.pending = nil
	s.mu.Unlock()
	for _, t := range pending {
		t.err = ErrClosed
		close(t.done)
	}
}

// flushLoop drives periodic flushes for a live server.
func (s *Scheduler) flushLoop(ctx context.Context, every time.Duration) {
	defer close(s.bgDone)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			_ = s.Flush(ctx)
			if s.cfg.CacheTTL > 0 {
				// Expired entries are otherwise only dropped when their
				// exact key is re-read; sweep so never-re-asked
				// questions don't accumulate for the server's lifetime.
				s.cache.Sweep()
			}
		}
	}
}

// count adds to a registry counter when one is attached.
func (s *Scheduler) count(name string, delta int64) {
	s.cfg.Counters.Add(name, delta)
}
