// Canonical question identity: the dedup key of the cross-query
// scheduler. Two questions submitted by different jobs are the same unit
// of crowd work when a worker could not tell them apart — same prompt
// text up to case and whitespace, same answer set up to order. The key
// deliberately ignores the submitting job's question ID and the
// simulation-only fields (Truth, Difficulty, Trap): a real deployment
// doesn't know them, and jobs re-asking a known question must hit the
// cache regardless of how they labelled it.
//
// Key structure: "<domain-hash>/<text-hash>", both halves SHA-256 over a
// length-prefixed encoding. The domain hash leads, so questions over
// distinct answer sets can never share a key (they would be distinct
// units of crowd work even with identical prompts), and a key's group —
// the shared-HIT batch it may ride in — is recoverable by prefix.
package scheduler

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"strings"
	"unicode"

	"cdas/internal/crowd"
)

// hashHexLen is how many hex characters of the SHA-256 are kept per key
// half: 16 chars = 64 bits, far beyond collision reach for any realistic
// question population while keeping keys printable and short.
const hashHexLen = 16

// NormalizeText canonicalises a prompt: lower-cased, whitespace runs
// collapsed to single spaces, leading and trailing space trimmed.
func NormalizeText(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := false
	for _, r := range strings.ToLower(s) {
		if unicode.IsSpace(r) {
			space = b.Len() > 0
			continue
		}
		if space {
			b.WriteByte(' ')
			space = false
		}
		b.WriteRune(r)
	}
	return b.String()
}

// CanonicalDomain canonicalises an answer set: entries normalised like
// prompt text, de-duplicated, sorted. The result identifies the set, not
// the presentation order.
func CanonicalDomain(domain []string) []string {
	out := make([]string, 0, len(domain))
	seen := make(map[string]struct{}, len(domain))
	for _, d := range domain {
		n := NormalizeText(d)
		if _, dup := seen[n]; dup {
			continue
		}
		seen[n] = struct{}{}
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// hashStrings hashes a string list injectively: every element is
// length-prefixed, so no concatenation of different lists can produce
// the same byte stream (no separator-injection collisions).
func hashStrings(parts []string) string {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:hashHexLen/2])
}

// DomainKey identifies an answer set: the hash of its canonical form.
// Questions share a HIT batch only within one domain key.
func DomainKey(domain []string) string {
	return hashStrings(CanonicalDomain(domain))
}

// QuestionKey is the scheduler's dedup key for a question:
// "<domain-hash>/<text-hash>". Canonically-equal questions (equal
// normalised text and canonical domain) always produce equal keys;
// questions over distinct canonical domains never collide, because the
// domain hash is a dedicated prefix.
func QuestionKey(q crowd.Question) string {
	return DomainKey(q.Domain) + "/" + hashStrings([]string{NormalizeText(q.Text)})
}

// ItemKey is the dedup key of one free-text enumeration answer: the
// hash of its normalised text under a dedicated "enum" namespace.
// Workers contributing "Blue Whale" and "blue  whale" name the same set
// member, so enumeration result sets grow by canonical identity exactly
// like the question cache does — through NormalizeText and the same
// length-prefixed hash. The namespace prefix keeps enumeration keys
// disjoint from question keys even for identical text.
func ItemKey(text string) string {
	return hashStrings([]string{"enum", NormalizeText(text)})
}

// MapAnswer returns the caller's own spelling of a canonically-equal
// answer: the domain entry whose canonical form matches answer's,
// falling back to the answer verbatim. Coalesced questions are
// published in one subscriber's literal form, so every other
// subscriber's verdict must be translated back into its own domain
// strings before its presentation layer counts votes.
func MapAnswer(answer string, domain []string) string {
	norm := NormalizeText(answer)
	for _, d := range domain {
		if NormalizeText(d) == norm {
			return d
		}
	}
	return answer
}

// CanonicalID is the question ID the scheduler publishes a deduplicated
// question under: derived from the dedup key alone, so the published HIT
// content is independent of which job contributed the question. The
// "c/" prefix keeps it clear of golden-question IDs ("golden/...") and
// ordinary per-job item IDs.
func CanonicalID(key string) string { return "c/" + key }
