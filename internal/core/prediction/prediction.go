// Package prediction implements CDAS's voting-based prediction model
// (Section 3 of the paper): given a user-required accuracy C and the mean
// accuracy μ of the worker population, it estimates how many workers must
// answer a HIT so that, in expectation, at least half of them return the
// correct answer with probability at least C.
//
// Two estimators are provided:
//
//   - ConservativeWorkers: the closed-form Chernoff-bound estimate of
//     Theorem 3, n >= -ln(1-C) / (2 (μ - 1/2)^2), rounded up to the next
//     odd integer.
//   - RequiredWorkers: the refined estimate of Algorithm 2, a binary
//     search over odd n for the minimum n with E[P_{n/2}] >= C, where
//     E[P_{n/2}] is the exact binomial majority tail of Theorem 1
//     (computed by Algorithm 3's ratio recurrence in package stats).
//
// Theorem 4 shows the same n also bounds the quality of the
// probability-based verification model, so this planner fronts both the
// voting and the Bayesian pipelines.
package prediction

import (
	"errors"
	"fmt"
	"math"

	"cdas/internal/stats"
)

// Errors returned by the planner. They are sentinel values so callers can
// branch on the failure mode (e.g. fall back to a default crowd size when
// the population is too unreliable to plan for).
var (
	// ErrAccuracyOutOfRange reports a required accuracy outside (0, 1).
	ErrAccuracyOutOfRange = errors.New("prediction: required accuracy must be in (0, 1)")
	// ErrMeanNotInformative reports a mean worker accuracy <= 1/2: such a
	// crowd carries no majority signal and no finite n satisfies the bound.
	ErrMeanNotInformative = errors.New("prediction: mean worker accuracy must exceed 1/2")
)

// Model is a worker-count planner for a fixed worker population. The zero
// value is not usable; construct with New.
type Model struct {
	mu float64 // mean accuracy of the worker population
}

// New returns a prediction model for a population with mean accuracy mu.
// mu must lie in (0.5, 1]; see ErrMeanNotInformative.
func New(mu float64) (*Model, error) {
	if math.IsNaN(mu) || mu <= 0.5 || mu > 1 {
		return nil, fmt.Errorf("%w (got %v)", ErrMeanNotInformative, mu)
	}
	return &Model{mu: mu}, nil
}

// MeanAccuracy reports the population mean accuracy the model plans with.
func (m *Model) MeanAccuracy() float64 { return m.mu }

// ExpectedAccuracy returns E[P_{n/2}] (Theorem 1): the probability that at
// least ceil(n/2) of n workers with mean accuracy μ answer correctly.
func (m *Model) ExpectedAccuracy(n int) float64 {
	return stats.MajorityTail(n, m.mu)
}

// ChernoffBound returns the Theorem 2 lower bound on ExpectedAccuracy(n).
func (m *Model) ChernoffBound(n int) float64 {
	return stats.ChernoffMajorityLowerBound(n, m.mu)
}

// ConservativeWorkers returns the Theorem 3 estimate: the minimum odd n
// with 1 - exp(-2 n (μ-1/2)^2) >= C, i.e. n = 2*floor(-ln(1-C)/(4(μ-1/2)^2)) + 1.
func (m *Model) ConservativeWorkers(c float64) (int, error) {
	if err := checkC(c); err != nil {
		return 0, err
	}
	d := m.mu - 0.5
	raw := -math.Log(1-c) / (4 * d * d)
	n := 2*int(math.Floor(raw)) + 1
	if n < 1 {
		n = 1
	}
	// Guard against floating-point shortfall at the boundary: Theorem 3
	// promises the bound holds at the returned n.
	for m.ChernoffBound(n) < c {
		n += 2
	}
	return n, nil
}

// RequiredWorkers returns the Algorithm 2 refined estimate: the minimum
// odd n such that the exact expected accuracy E[P_{n/2}] >= C. It is never
// larger than ConservativeWorkers(c).
func (m *Model) RequiredWorkers(c float64) (int, error) {
	upper, err := m.ConservativeWorkers(c)
	if err != nil {
		return 0, err
	}
	// Binary search over odd integers in [1, upper]. Work in the index
	// space i where n = 2i+1 to keep the invariant trivially odd.
	lo, hi := 0, (upper-1)/2
	for lo < hi {
		mid := (lo + hi) / 2
		if m.ExpectedAccuracy(2*mid+1) >= c {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return 2*lo + 1, nil
}

// WorkersFor is the function g(C) of Section 3.1: a convenience wrapper
// around RequiredWorkers that panics on invalid input. Use it when C and μ
// were validated upstream (e.g. by query parsing).
func (m *Model) WorkersFor(c float64) int {
	n, err := m.RequiredWorkers(c)
	if err != nil {
		panic(err)
	}
	return n
}

func checkC(c float64) error {
	if math.IsNaN(c) || c <= 0 || c >= 1 {
		return fmt.Errorf("%w (got %v)", ErrAccuracyOutOfRange, c)
	}
	return nil
}
