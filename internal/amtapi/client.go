package amtapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"cdas/internal/crowd"
	"cdas/internal/engine"
)

// Client implements engine.Platform over the REST protocol, so the
// crowdsourcing engine can drive a marketplace running in another
// process.
type Client struct {
	base string
	http *http.Client
}

// NewClient creates a client for the given base URL (e.g.
// "http://localhost:9000"). httpClient may be nil for http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

var _ engine.Platform = (*Client)(nil)

// Publish creates the HIT remotely and returns a Run streaming its
// assignments.
func (c *Client) Publish(hit crowd.HIT, n int) (engine.Run, error) {
	questions := make([]QuestionWire, len(hit.Questions))
	for i, q := range hit.Questions {
		questions[i] = toWire(q)
	}
	var resp CreateHITResponse
	if err := c.post("/v1/hits", CreateHITRequest{
		Title:       hit.Title,
		Questions:   questions,
		Assignments: n,
	}, &resp); err != nil {
		return nil, err
	}
	hit.ID = resp.HITID
	return &remoteRun{client: c, hit: hit}, nil
}

// remoteRun implements engine.Run over the protocol.
type remoteRun struct {
	client    *Client
	hit       crowd.HIT
	done      bool
	cancelled bool
}

func (r *remoteRun) HIT() crowd.HIT { return r.hit }

func (r *remoteRun) Next() (crowd.Assignment, bool) {
	if r.done || r.cancelled {
		return crowd.Assignment{}, false
	}
	var resp NextResponse
	if err := r.client.post("/v1/hits/"+r.hit.ID+"/next", nil, &resp); err != nil {
		// Engine.Run has no error channel (matching the simulator's
		// semantics); a broken transport reads as an exhausted run.
		r.done = true
		return crowd.Assignment{}, false
	}
	if resp.Done || resp.Assignment == nil {
		r.done = true
		return crowd.Assignment{}, false
	}
	a := resp.Assignment
	answers := make([]crowd.Answer, len(a.Answers))
	for i, ans := range a.Answers {
		answers[i] = crowd.Answer{QuestionID: ans.QuestionID, Value: ans.Value}
	}
	return crowd.Assignment{
		HITID:      a.HITID,
		Worker:     &crowd.Worker{ID: a.WorkerID, ApprovalRate: a.ApprovalRate},
		Answers:    answers,
		SubmitTime: a.SubmitTime,
	}, true
}

func (r *remoteRun) Cancel() {
	if r.cancelled {
		return
	}
	r.cancelled = true
	req, err := http.NewRequest(http.MethodDelete, r.client.base+"/v1/hits/"+r.hit.ID, nil)
	if err != nil {
		return
	}
	if resp, err := r.client.http.Do(req); err == nil {
		resp.Body.Close()
	}
}

// Charged fetches the accrued fees from the remote status endpoint.
func (r *remoteRun) Charged() float64 {
	st, err := r.client.Status(r.hit.ID)
	if err != nil {
		return 0
	}
	return st.Charged
}

// Status fetches a HIT's accounting state.
func (c *Client) Status(hitID string) (StatusResponse, error) {
	var st StatusResponse
	resp, err := c.http.Get(c.base + "/v1/hits/" + hitID)
	if err != nil {
		return st, fmt.Errorf("amtapi: status: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("amtapi: status: %s", readError(resp))
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("amtapi: status: %w", err)
	}
	return st, nil
}

func (c *Client) post(path string, body, out any) error {
	var reader io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("amtapi: encode: %w", err)
		}
		reader = bytes.NewReader(raw)
	}
	resp, err := c.http.Post(c.base+path, "application/json", reader)
	if err != nil {
		return fmt.Errorf("amtapi: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("amtapi: %s: %s", path, readError(resp))
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("amtapi: %s: decode: %w", path, err)
		}
	}
	return nil
}

func readError(resp *http.Response) string {
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 512))
	if err != nil || len(raw) == 0 {
		return resp.Status
	}
	return fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
}
