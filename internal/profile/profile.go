// Package profile maintains workers' historical performance records — the
// "workers' accuracies for historical queries" CDAS's verification model
// weighs votes with (Section 4.1).
//
// Accuracies are tracked per job kind because, as Section 3.3 observes, a
// worker's accuracy varies widely across task types (a good image tagger
// may be a poor sentiment judge). The store is safe for concurrent use and
// serialises to JSON for persistence across engine restarts.
//
// Internally the store is lock-striped by worker ID: every assignment a
// HIT consumes records that worker's golden outcomes and reads that
// worker's accuracy, so striping by worker lets the engine's concurrent
// pipeline — and the scheduler's concurrent domain groups sharing one
// store — proceed in parallel instead of serialising every vote through
// a single store-wide mutex. Whole-store operations (Snapshot, Workers,
// MeanAccuracy, Save, Load) visit the stripes in a fixed order.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"cdas/internal/textutil"
)

// stripeCount is the number of independent locks; a power of two so the
// worker-hash fold is a mask. 32 stripes keep the collision rate low for
// realistic worker populations while costing a few hundred bytes.
const stripeCount = 32

// Store maps (job, worker) to golden-question outcome counts. The zero
// value is ready to use.
type Store struct {
	stripes [stripeCount]stripe
}

// stripe holds the counts of every worker hashing to it, still grouped
// by job: jobs maps job name to that job's counts for this stripe's
// workers only.
type stripe struct {
	mu   sync.RWMutex
	jobs map[string]*jobCounts
}

type jobCounts struct {
	Correct map[string]int `json:"correct"`
	Total   map[string]int `json:"total"`
}

func newJobCounts() *jobCounts {
	return &jobCounts{Correct: make(map[string]int), Total: make(map[string]int)}
}

// NewStore returns an empty Store.
func NewStore() *Store { return &Store{} }

// stripeFor picks the stripe owning a worker's counts (allocation-free
// FNV-1a — this sits on the engine's per-assignment path).
func (s *Store) stripeFor(worker string) *stripe {
	return &s.stripes[textutil.Hash32(worker)&(stripeCount-1)]
}

// Record notes one golden-question outcome for worker under job.
func (s *Store) Record(job, worker string, correct bool) {
	st := s.stripeFor(worker)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.jobs == nil {
		st.jobs = make(map[string]*jobCounts)
	}
	jc, ok := st.jobs[job]
	if !ok {
		jc = newJobCounts()
		st.jobs[job] = jc
	}
	jc.Total[worker]++
	if correct {
		jc.Correct[worker]++
	}
}

// counts reads one worker's (correct, total) for job.
func (s *Store) counts(job, worker string) (int, int) {
	st := s.stripeFor(worker)
	st.mu.RLock()
	defer st.mu.RUnlock()
	jc, ok := st.jobs[job]
	if !ok {
		return 0, 0
	}
	return jc.Correct[worker], jc.Total[worker]
}

// Accuracy returns worker's estimated accuracy for job and whether any
// outcome has been recorded. The estimate is Laplace-smoothed
// ((correct+1)/(total+2), the Beta(1,1) posterior mean): with tiny golden
// samples a raw 0/1 estimate would hand the verification model an
// extreme log-odds weight — a worker who merely missed one golden
// question would actively push the answers they got right DOWN. Smoothing
// keeps early weights moderate and washes out as samples accumulate.
func (s *Store) Accuracy(job, worker string) (float64, bool) {
	correct, total := s.counts(job, worker)
	if total == 0 {
		return 0, false
	}
	return (float64(correct) + 1) / (float64(total) + 2), true
}

// AccuracyOr returns the estimate or fallback for unseen workers.
func (s *Store) AccuracyOr(job, worker string, fallback float64) float64 {
	if a, ok := s.Accuracy(job, worker); ok {
		return a
	}
	return fallback
}

// ShrunkAccuracy returns a Beta-posterior estimate shrunk towards prior
// with pseudo pseudo-counts: (correct + pseudo·prior) / (total + pseudo).
// Unseen workers return the prior itself.
//
// This is what the engine weighs votes with: a single missed golden
// question must not flip a worker's estimate below chance (which would
// turn their correct answers into negative evidence in Equation 4); with
// a prior of strength pseudo the estimate stays near the population mean
// until real evidence accumulates, then converges to the empirical rate.
func (s *Store) ShrunkAccuracy(job, worker string, prior, pseudo float64) float64 {
	if pseudo < 0 {
		pseudo = 0
	}
	correct, total := s.counts(job, worker)
	if total == 0 {
		return prior
	}
	return (float64(correct) + pseudo*prior) / (float64(total) + pseudo)
}

// Snapshot is an immutable copy of one job's outcome counts, taken with
// Store.Snapshot. The engine's concurrent pipeline reads vote weights from
// a snapshot combined with per-HIT golden tallies, so one HIT's weights
// never depend on how its neighbours' writes interleave — results stay
// deterministic while the shared store keeps accumulating history.
type Snapshot struct {
	correct map[string]int
	total   map[string]int
}

// Snapshot copies job's current counts into an immutable view, visiting
// the stripes in index order. Workers recorded concurrently with the
// call may or may not appear — the same guarantee the single-lock store
// gave a caller racing Record.
func (s *Store) Snapshot(job string) Snapshot {
	snap := Snapshot{correct: make(map[string]int), total: make(map[string]int)}
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		if jc, ok := st.jobs[job]; ok {
			for w, c := range jc.Correct {
				snap.correct[w] = c
			}
			for w, n := range jc.Total {
				snap.total[w] = n
			}
		}
		st.mu.RUnlock()
	}
	return snap
}

// Samples reports the snapshotted outcome count for worker.
func (sn Snapshot) Samples(worker string) int { return sn.total[worker] }

// ShrunkAccuracy mirrors Store.ShrunkAccuracy over the snapshot plus
// extra outcomes observed since the snapshot was taken (a HIT's own golden
// tally): (correct + extraCorrect + pseudo·prior) / (total + extraTotal +
// pseudo). Workers with no evidence at all return the prior.
func (sn Snapshot) ShrunkAccuracy(worker string, extraCorrect, extraTotal int, prior, pseudo float64) float64 {
	if pseudo < 0 {
		pseudo = 0
	}
	correct := sn.correct[worker] + extraCorrect
	total := sn.total[worker] + extraTotal
	if total == 0 {
		return prior
	}
	return (float64(correct) + pseudo*prior) / (float64(total) + pseudo)
}

// Samples reports how many outcomes are recorded for (job, worker).
func (s *Store) Samples(job, worker string) int {
	_, total := s.counts(job, worker)
	return total
}

// Workers lists workers with recorded outcomes for job, sorted.
func (s *Store) Workers(job string) []string {
	var out []string
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		if jc, ok := st.jobs[job]; ok {
			for w := range jc.Total {
				out = append(out, w)
			}
		}
		st.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// MeanAccuracy returns the unweighted mean accuracy over all workers
// recorded for job, and false when no worker has been recorded. The
// prediction model uses this as μ once sampling has warmed up.
func (s *Store) MeanAccuracy(job string) (float64, bool) {
	sum, n := 0.0, 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		if jc, ok := st.jobs[job]; ok {
			for w, total := range jc.Total {
				if total > 0 {
					sum += float64(jc.Correct[w]) / float64(total)
					n++
				}
			}
		}
		st.mu.RUnlock()
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// merged collects every stripe's counts into one per-job view — the
// wire shape Save has always written (and Load reads back), so striping
// is invisible in the serialised form.
func (s *Store) merged() map[string]*jobCounts {
	out := make(map[string]*jobCounts)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for job, jc := range st.jobs {
			dst, ok := out[job]
			if !ok {
				dst = newJobCounts()
				out[job] = dst
			}
			for w, c := range jc.Correct {
				dst.Correct[w] = c
			}
			for w, n := range jc.Total {
				dst.Total[w] = n
			}
		}
		st.mu.RUnlock()
	}
	return out
}

// Save serialises the store as JSON.
func (s *Store) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.merged()); err != nil {
		return fmt.Errorf("profile: save: %w", err)
	}
	return nil
}

// Load replaces the store's contents with JSON previously written by Save.
func (s *Store) Load(r io.Reader) error {
	var jobs map[string]*jobCounts
	if err := json.NewDecoder(r).Decode(&jobs); err != nil {
		return fmt.Errorf("profile: load: %w", err)
	}
	for job, jc := range jobs {
		if jc == nil {
			jobs[job] = newJobCounts()
			continue
		}
		if jc.Correct == nil {
			jc.Correct = make(map[string]int)
		}
		if jc.Total == nil {
			jc.Total = make(map[string]int)
		}
		for w, c := range jc.Correct {
			if c < 0 || c > jc.Total[w] {
				return fmt.Errorf("profile: load: inconsistent counts for job %q worker %q", job, w)
			}
		}
	}
	// Redistribute the flat per-job view across the stripes. Locks are
	// taken in index order, the same order every other whole-store
	// operation uses, so Load cannot deadlock against them.
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
	}
	defer func() {
		for i := range s.stripes {
			s.stripes[i].mu.Unlock()
		}
	}()
	for i := range s.stripes {
		s.stripes[i].jobs = nil
	}
	for job, jc := range jobs {
		for w, total := range jc.Total {
			st := s.stripeFor(w)
			if st.jobs == nil {
				st.jobs = make(map[string]*jobCounts)
			}
			dst, ok := st.jobs[job]
			if !ok {
				dst = newJobCounts()
				st.jobs[job] = dst
			}
			dst.Total[w] = total
			if c := jc.Correct[w]; c > 0 {
				dst.Correct[w] = c
			}
		}
	}
	return nil
}

// SaveFile writes the store to path, creating or truncating it.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	defer f.Close()
	if err := s.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads the store from path.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	defer f.Close()
	return s.Load(f)
}
