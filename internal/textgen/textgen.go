// Package textgen synthesises the labelled tweet stream the TSA
// application consumes — the stand-in for the paper's real Twitter data
// with manually checked ground truth (Section 5.1).
//
// Generated tweets carry (a) a movie title so the executor's keyword
// filter has something to match, (b) lexicon words giving a bag-of-words
// learner honest signal, and (c) a configurable fraction of "hard" tweets
// whose surface polarity contradicts the label (sarcasm), which is what
// separates human from machine accuracy in Figure 5 and drags voting
// models below the prediction in Figure 8.
package textgen

import (
	"fmt"
	"math"
	"strings"
	"time"

	"cdas/internal/crowd"
	"cdas/internal/randx"
)

// Sentiment labels (the answer domain R of the paper's TSA queries).
const (
	LabelPositive = "Positive"
	LabelNeutral  = "Neutral"
	LabelNegative = "Negative"
)

// Labels is the TSA answer domain in display order.
var Labels = []string{LabelPositive, LabelNeutral, LabelNegative}

// Kind classifies how a tweet's surface text relates to its label,
// driving both machine separability and simulated worker difficulty.
type Kind string

// Tweet kinds.
const (
	KindEasy    Kind = "easy"    // surface polarity agrees with the label
	KindHard    Kind = "hard"    // sarcasm: surface is the opposite class
	KindMixed   Kind = "mixed"   // both polarities present; order decides
	KindWeak    Kind = "weak"    // no lexicon signal at all
	KindNeutral Kind = "neutral" // factual, no polarity words
	KindTinged  Kind = "tinged"  // factual but contains a polarity word
)

// Tweet is one labelled synthetic tweet.
type Tweet struct {
	ID    string
	Movie string
	Text  string
	Truth string // one of Labels
	At    time.Time
	Kind  Kind
	// Hard marks sarcastic/inverted tweets; Trap is the surface answer
	// they pull annotators towards ("" when not hard).
	Hard bool
	Trap string
}

// Config parameterises generation.
type Config struct {
	Seed           uint64
	Movies         []string // defaults to Movies200
	TweetsPerMovie int      // default 200 (the paper's per-movie count)
	// Class mix; defaults to 40% positive, 25% neutral, 35% negative.
	PositiveShare, NeutralShare, NegativeShare float64
	// HardFraction of positive/negative tweets use inverted templates.
	// Default 0.10.
	HardFraction float64
	// Start and Span place tweet timestamps uniformly in [Start,
	// Start+Span). Defaults: 2011-10-01, 24h (the paper's one-day
	// queries).
	Start time.Time
	Span  time.Duration
}

func (c Config) withDefaults() Config {
	if len(c.Movies) == 0 {
		c.Movies = Movies200()
	}
	if c.TweetsPerMovie == 0 {
		c.TweetsPerMovie = 200
	}
	if c.PositiveShare == 0 && c.NeutralShare == 0 && c.NegativeShare == 0 {
		c.PositiveShare, c.NeutralShare, c.NegativeShare = 0.40, 0.25, 0.35
	}
	if c.HardFraction == 0 {
		c.HardFraction = 0.10
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Span == 0 {
		c.Span = 24 * time.Hour
	}
	return c
}

// Validate reports configuration errors after defaulting.
func (c Config) Validate() error {
	c = c.withDefaults()
	total := c.PositiveShare + c.NeutralShare + c.NegativeShare
	if math.Abs(total-1) > 1e-9 {
		return fmt.Errorf("textgen: class shares must sum to 1, got %v", total)
	}
	if c.PositiveShare < 0 || c.NeutralShare < 0 || c.NegativeShare < 0 {
		return fmt.Errorf("textgen: class shares must be non-negative")
	}
	if c.HardFraction < 0 || c.HardFraction > 1 {
		return fmt.Errorf("textgen: hard fraction %v outside [0,1]", c.HardFraction)
	}
	if c.TweetsPerMovie < 0 {
		return fmt.Errorf("textgen: tweets per movie must be >= 0")
	}
	return nil
}

// Generate produces the full labelled stream: TweetsPerMovie tweets for
// every movie, deterministically under Config.Seed.
func Generate(cfg Config) ([]Tweet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := randx.New(cfg.Seed)
	tweets := make([]Tweet, 0, len(cfg.Movies)*cfg.TweetsPerMovie)
	for _, movie := range cfg.Movies {
		movieRNG := rng.Split("movie/" + movie)
		for i := 0; i < cfg.TweetsPerMovie; i++ {
			tw := generateOne(movieRNG, cfg, movie)
			tw.ID = fmt.Sprintf("%s#%03d", strings.ReplaceAll(movie, " ", ""), i)
			tweets = append(tweets, tw)
		}
	}
	return tweets, nil
}

// Sub-kind mix within the positive/negative classes. Easy tweets take the
// remaining share after hard (Config.HardFraction), mixed and weak.
const (
	mixedShare  = 0.15
	weakShare   = 0.05
	tingedShare = 0.30 // of neutral tweets
	// misspellRate is the chance a polarity word is rendered with a
	// random distortion ("terrrible"): humans read through it, a unigram
	// model sees an unknown token — the informal-text noise that capped
	// LIBSVM on real tweets.
	misspellRate = 0.55
)

func generateOne(rng *randx.Source, cfg Config, movie string) Tweet {
	at := cfg.Start.Add(time.Duration(rng.Float64() * float64(cfg.Span)))
	class := rng.WeightedChoice([]float64{cfg.PositiveShare, cfg.NeutralShare, cfg.NegativeShare})
	if class == 1 {
		return neutralTweet(rng, movie, at)
	}
	truth := LabelPositive
	if class == 2 {
		truth = LabelNegative
	}
	u := rng.Float64()
	switch {
	case u < cfg.HardFraction:
		return hardTweet(rng, movie, at, truth)
	case u < cfg.HardFraction+mixedShare:
		return mixedTweet(rng, movie, at, truth)
	case u < cfg.HardFraction+mixedShare+weakShare:
		return weakTweet(rng, movie, at, truth)
	}
	return easyTweet(rng, movie, at, truth)
}

// polarityWord draws a (possibly distorted) word of the given class.
func polarityWord(rng *randx.Source, label string) string {
	lexicon := positiveWords
	if label == LabelNegative {
		lexicon = negativeWords
	}
	w := randx.Choice(rng, lexicon)
	if rng.Bool(misspellRate) {
		w = distort(rng, w)
	}
	return w
}

// distort applies two or three stacked typo-style edits (duplicated
// letter, dropped letter, swapped adjacent letters, stretched letter).
// A single edit yields only ~20 variants per word — few enough for a
// corpus-scale learner to memorise — whereas stacked edits explode
// combinatorially, so almost every distorted token is unseen at test
// time, like real tweet typos.
func distort(rng *randx.Source, w string) string {
	edits := 2 + rng.IntN(2)
	for e := 0; e < edits; e++ {
		if len(w) < 4 {
			return w
		}
		b := []byte(w)
		switch rng.IntN(4) {
		case 0: // duplicate a letter
			i := rng.IntN(len(b))
			b = append(b[:i+1], b[i:]...)
		case 1: // drop a letter
			i := 1 + rng.IntN(len(b)-2)
			b = append(b[:i], b[i+1:]...)
		case 2: // swap adjacent letters
			i := 1 + rng.IntN(len(b)-2)
			b[i], b[i+1] = b[i+1], b[i]
		default: // stretch a letter
			i := rng.IntN(len(b))
			b = append(b[:i+1], b[i:]...)
			b = append(b[:i+1], b[i:]...)
		}
		w = string(b)
	}
	return w
}

// easyTweet uses a class-shared polarity template; the lexicon word is
// the only class signal.
func easyTweet(rng *randx.Source, movie string, at time.Time, truth string) Tweet {
	text := fill(randx.Choice(rng, polarityTemplates), movie, func() string {
		return polarityWord(rng, truth)
	})
	return Tweet{Movie: movie, Text: text, Truth: truth, At: at, Kind: KindEasy}
}

// hardTweet renders the sarcasm case: the same templates, but the surface
// word belongs to the OPPOSITE class — indistinguishable from an easy
// tweet of the other class for any surface reader, per the paper's Last
// Airbender example.
func hardTweet(rng *randx.Source, movie string, at time.Time, truth string) Tweet {
	tw := easyTweet(rng, movie, at, opposite(truth))
	tw.Truth = truth
	tw.Kind = KindHard
	tw.Hard = true
	tw.Trap = opposite(truth)
	return tw
}

// mixedTweet fills a shared template with one word of each polarity; the
// truth follows the final ({w2}) word's class, so the bag of words is
// balanced and only reading order disambiguates.
func mixedTweet(rng *randx.Source, movie string, at time.Time, truth string) Tweet {
	tpl := randx.Choice(rng, mixedPolarityTemplates)
	text := strings.ReplaceAll(tpl, "{m}", movie)
	text = strings.Replace(text, "{w1}", polarityWord(rng, opposite(truth)), 1)
	text = strings.Replace(text, "{w2}", polarityWord(rng, truth), 1)
	return Tweet{Movie: movie, Text: text, Truth: truth, At: at, Kind: KindMixed}
}

// weakTweet carries no lexicon signal; its label is the class the tweet
// was drawn for, but nothing in the text reveals it.
func weakTweet(rng *randx.Source, movie string, at time.Time, truth string) Tweet {
	text := strings.ReplaceAll(randx.Choice(rng, weakTemplates), "{m}", movie)
	return Tweet{Movie: movie, Text: text, Truth: truth, At: at, Kind: KindWeak}
}

func neutralTweet(rng *randx.Source, movie string, at time.Time) Tweet {
	if rng.Bool(tingedShare) {
		tpl := randx.Choice(rng, tingedNeutralTemplates)
		text := strings.ReplaceAll(tpl, "{m}", movie)
		for strings.Contains(text, "{w}") {
			text = strings.Replace(text, "{w}", polarityWord(rng, randx.Choice(rng, []string{LabelPositive, LabelNegative})), 1)
		}
		return Tweet{Movie: movie, Text: text, Truth: LabelNeutral, At: at, Kind: KindTinged}
	}
	text := fill(randx.Choice(rng, neutralTemplates), movie, func() string {
		return randx.Choice(rng, neutralWords)
	})
	return Tweet{Movie: movie, Text: text, Truth: LabelNeutral, At: at, Kind: KindNeutral}
}

func opposite(label string) string {
	if label == LabelPositive {
		return LabelNegative
	}
	return LabelPositive
}

// fill substitutes {m} with the movie title and every {w} with a fresh
// lexicon word.
func fill(template, movie string, word func() string) string {
	out := strings.ReplaceAll(template, "{m}", movie)
	for strings.Contains(out, "{w}") {
		out = strings.Replace(out, "{w}", word(), 1)
	}
	return out
}

// Question converts a tweet into the crowd question the engine publishes:
// domain = sentiment labels, with per-kind difficulty reflecting how much
// context a human needs. Hard tweets carry a trap pulling workers to the
// surface answer; mixed/weak/tinged tweets raise difficulty without a
// systematic pull.
func (t Tweet) Question() crowd.Question {
	q := crowd.Question{
		ID:     t.ID,
		Text:   t.Text,
		Domain: append([]string(nil), Labels...),
		Truth:  t.Truth,
	}
	switch {
	case t.Kind == KindHard || t.Hard:
		q.Trap = t.Trap
		q.TrapStrength = 0.55 // most workers fall for surface polarity...
		q.Difficulty = 0.2    // ...and even resistant ones find it harder
	case t.Kind == KindMixed:
		q.Difficulty = 0.35
	case t.Kind == KindWeak:
		q.Difficulty = 0.5
	case t.Kind == KindTinged:
		q.Difficulty = 0.25
	default:
		q.Difficulty = 0.05 // light noise on easy/neutral tweets
	}
	return q
}
