package profile

import (
	"math"
	"testing"
)

// TestSnapshotMatchesLiveStore: snapshot + per-HIT extras must reproduce
// exactly what the live store would report after the same records — the
// equivalence the engine's sequential and pipeline paths rely on.
func TestSnapshotMatchesLiveStore(t *testing.T) {
	s := NewStore()
	s.Record("tsa", "w1", true)
	s.Record("tsa", "w1", true)
	s.Record("tsa", "w1", false)
	snap := s.Snapshot("tsa")

	// Records arriving after the snapshot, mirrored into extras.
	extras := []bool{true, false, true, true}
	correct, total := 0, 0
	for _, ok := range extras {
		s.Record("tsa", "w1", ok)
		total++
		if ok {
			correct++
		}
		live := s.ShrunkAccuracy("tsa", "w1", 0.7, 4)
		snapped := snap.ShrunkAccuracy("w1", correct, total, 0.7, 4)
		if math.Abs(live-snapped) > 1e-12 {
			t.Fatalf("after %d extras: snapshot %v != live %v", total, snapped, live)
		}
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := NewStore()
	s.Record("tsa", "w1", true)
	snap := s.Snapshot("tsa")
	before := snap.ShrunkAccuracy("w1", 0, 0, 0.7, 4)
	// Later store writes must not leak into the snapshot.
	for i := 0; i < 10; i++ {
		s.Record("tsa", "w1", false)
	}
	if got := snap.ShrunkAccuracy("w1", 0, 0, 0.7, 4); got != before {
		t.Errorf("snapshot moved with the store: %v -> %v", before, got)
	}
	if got := snap.Samples("w1"); got != 1 {
		t.Errorf("snapshot samples = %d, want 1", got)
	}
	// Unknown workers with no extras fall back to the prior.
	if got := snap.ShrunkAccuracy("nobody", 0, 0, 0.7, 4); got != 0.7 {
		t.Errorf("unseen worker accuracy = %v, want prior 0.7", got)
	}
	// Extras alone (empty snapshot for that worker) still count.
	if got := snap.ShrunkAccuracy("nobody", 2, 2, 0.7, 4); got <= 0.7 {
		t.Errorf("two correct extras should raise the estimate, got %v", got)
	}
}
