package jobs

import (
	"encoding/json"
	"fmt"
	"sort"
	"testing"
	"time"

	"cdas/internal/jobstore"
)

// benchStoreJobs sizes the populated store behind the boot and listing
// benchmarks (see BENCH_jobstore.json). 100k records is the "busy
// server restarted after a long run" scenario the recovery bound is
// about.
const benchStoreJobs = 100_000

// benchStatus builds the i-th fixture record. The states cycle through
// Pending/Done/Parked only: a Running record would make every boot
// requeue it (a store write), and the boot benchmark needs reopening
// the same directory to be read-only.
func benchStatus(i int) walStatus {
	states := []State{StatePending, StateDone, StateParked, StateDone}
	return walStatus{
		Job: Job{
			Name:     fmt.Sprintf("job-%06d", i),
			Kind:     KindTSA,
			Priority: i % 7,
			Tenant:   fmt.Sprintf("tenant-%d", i%5),
			Query: Query{
				Keywords:         []string{"iPhone4S", "camera"},
				RequiredAccuracy: 0.9,
				Domain:           []string{"positive", "neutral", "negative"},
				Window:           24 * time.Hour,
			},
		},
		State:    states[i%len(states)],
		Attempts: 1,
		Progress: float64(i%10) / 10,
		Cost:     float64(i%13) * 0.25,
		Seq:      uint64(i + 1),
	}
}

// buildBenchStore populates dir with benchStoreJobs records through
// the same on-disk encodings the service commits — unsynced, since the
// benchmark measures boot, not the build.
func buildBenchStore(b *testing.B, dir, engine string) {
	b.Helper()
	switch engine {
	case EngineWAL:
		log, err := jobstore.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < benchStoreJobs; i++ {
			rec, err := json.Marshal(walEvent{Op: "submit", Status: benchStatus(i)})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := log.AppendNoSync(rec); err != nil {
				b.Fatal(err)
			}
		}
		if err := log.Close(); err != nil {
			b.Fatal(err)
		}
	case EngineLSM:
		// A large memtable keeps the build to a couple of checkpoints;
		// the final Checkpoint leaves the boot a run set plus an empty
		// WAL tail — the recovery shape the engine promises.
		lsm, err := jobstore.OpenLSM(jobstore.LSMConfig{Dir: dir, NoSync: true, MemtableBytes: 64 << 20})
		if err != nil {
			b.Fatal(err)
		}
		var batch []jobstore.Op
		for i := 0; i < benchStoreJobs; i++ {
			ws := benchStatus(i)
			payload, err := json.Marshal(ws)
			if err != nil {
				b.Fatal(err)
			}
			batch = append(batch,
				jobstore.Op{Key: lsmPrimaryKey(ws.Job.Name), Value: payload},
				jobstore.Op{Key: lsmStateKey(ws.State, ws.Seq, ws.Job.Name)},
				jobstore.Op{Key: lsmPrioKey(ws.Job.Priority, ws.Job.Name)},
				jobstore.Op{Key: lsmTenantKey(ws.Job.Tenant, ws.Job.Name)},
			)
			if len(batch) >= 4096 {
				if err := lsm.Apply(batch); err != nil {
					b.Fatal(err)
				}
				batch = batch[:0]
			}
		}
		if len(batch) > 0 {
			if err := lsm.Apply(batch); err != nil {
				b.Fatal(err)
			}
		}
		if err := lsm.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		if err := lsm.Close(); err != nil {
			b.Fatal(err)
		}
	default:
		b.Fatalf("unknown engine %q", engine)
	}
}

// BenchmarkStoreBoot measures cold-start recovery of a 100k-job store
// under each engine: WAL replay from seq zero versus LSM checkpoint +
// tail. Reports boot_ms, the per-boot wall time the bench gate bounds.
func BenchmarkStoreBoot(b *testing.B) {
	for _, engine := range []string{EngineWAL, EngineLSM} {
		b.Run(engine, func(b *testing.B) {
			dir := b.TempDir()
			buildBenchStore(b, dir, engine)
			// One throwaway boot verifies the fixture before the clock runs.
			svc, err := OpenService(ServiceConfig{Dir: dir, Engine: engine, SnapshotEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			if n := len(svc.Statuses()); n != benchStoreJobs {
				b.Fatalf("fixture store has %d jobs, want %d", n, benchStoreJobs)
			}
			svc.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				svc, err := OpenService(ServiceConfig{Dir: dir, Engine: engine, SnapshotEvery: -1})
				if err != nil {
					b.Fatal(err)
				}
				svc.Close()
			}
			b.StopTimer()
			b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N), "boot_ms")
		})
	}
}

// BenchmarkJobsListP99 measures one GET /v1/jobs page (limit 100) over
// a 100k-job table, walking the primary index page by page. Reports
// list_p99_us, the tail latency the bench gate bounds — the index
// range-read must stay O(page), not O(table).
func BenchmarkJobsListP99(b *testing.B) {
	svc, err := OpenService(ServiceConfig{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchStoreJobs; i++ {
		svc.m.restore(fromWal(benchStatus(i)))
	}
	// Each iteration reads a fixed batch of pages, so even a -benchtime
	// 3x baseline run collects a few hundred samples for the percentile.
	const (
		pageSize   = 100
		pagesPerOp = 256
	)
	durs := make([]time.Duration, 0, b.N*pagesPerOp)
	after := ""
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < pagesPerOp; p++ {
			start := time.Now()
			page, more := svc.StatusesPage(after, pageSize, "", "")
			durs = append(durs, time.Since(start))
			if !more || len(page) == 0 {
				after = ""
			} else {
				after = page[len(page)-1].Job.Name
			}
		}
	}
	b.StopTimer()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	p99 := durs[len(durs)*99/100]
	b.ReportMetric(float64(p99.Nanoseconds())/1e3, "list_p99_us")
}
