package alipr

import (
	"testing"

	"cdas/internal/imagetag"
)

func corpus(t *testing.T, seed uint64, perSubject int, noise float64) ([][]float64, []string, []imagetag.Image) {
	t.Helper()
	imgs, err := imagetag.Generate(imagetag.Config{
		Seed:             seed,
		ImagesPerSubject: perSubject,
		FeatureNoise:     noise,
	})
	if err != nil {
		t.Fatal(err)
	}
	features := make([][]float64, len(imgs))
	tags := make([]string, len(imgs))
	for i, img := range imgs {
		features[i] = img.Features
		tags[i] = img.TrueTag
	}
	return features, tags, imgs
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, Options{}); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := Train([][]float64{{1, 2}}, []string{"a", "b"}, Options{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, []string{"a", "b"}, Options{}); err == nil {
		t.Error("ragged features accepted")
	}
}

func TestAnnotateNoiselessCorpusIsAccurate(t *testing.T) {
	// With zero feature noise every image sits exactly on its tag's
	// embedding: clustering with enough clusters should annotate well
	// above chance. (Sanity check that tag propagation works at all.)
	features, tags, imgs := corpus(t, 1, 40, 0.001)
	ann, err := Train(features, tags, Options{K: 48, Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, img := range imgs {
		if ann.Annotate(features[i]) == img.TrueTag {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(imgs)); acc < 0.7 {
		t.Errorf("noiseless accuracy %v, want >= 0.7", acc)
	}
}

func TestAnnotateRealisticNoiseLandsInALIPRBand(t *testing.T) {
	// With the default noise the annotator must clearly beat random
	// guessing over the ~58-tag vocabulary (~2%) yet stay far below
	// human accuracy — the paper measures ALIPR at 12.6-30%.
	features, tags, _ := corpus(t, 2, 60, 1.0)
	ann, err := Train(features, tags, Options{K: 24})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate on a fresh draw (same distribution, different seed).
	testF, _, testImgs := corpus(t, 3, 20, 1.0)
	correct := 0
	for i, img := range testImgs {
		if ann.Annotate(testF[i]) == img.TrueTag {
			correct++
		}
	}
	acc := float64(correct) / float64(len(testImgs))
	if acc < 0.05 {
		t.Errorf("ALIPR-like accuracy %v: no signal at all", acc)
	}
	if acc > 0.55 {
		t.Errorf("ALIPR-like accuracy %v: implausibly strong for the baseline", acc)
	}
}

func TestAnnotateTopK(t *testing.T) {
	features, tags, _ := corpus(t, 4, 20, 1.0)
	ann, err := Train(features, tags, Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	top := ann.AnnotateTopK(features[0], 3)
	if len(top) == 0 || len(top) > 3 {
		t.Fatalf("AnnotateTopK returned %d tags", len(top))
	}
	if top[0] != ann.Annotate(features[0]) {
		t.Error("Annotate must agree with AnnotateTopK's first entry")
	}
	// Oversized k clamps.
	all := ann.AnnotateTopK(features[0], 10000)
	if len(all) == 0 {
		t.Error("clamped AnnotateTopK empty")
	}
}

func TestDeterministicTraining(t *testing.T) {
	features, tags, _ := corpus(t, 5, 20, 1.0)
	a1, err := Train(features, tags, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Train(features, tags, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range features {
		if a1.Annotate(features[i]) != a2.Annotate(features[i]) {
			t.Fatal("training not deterministic under fixed seed")
		}
	}
}

func TestKClampsToCorpusSize(t *testing.T) {
	features, tags, _ := corpus(t, 6, 1, 1.0) // 8 subjects * 1 image
	ann, err := Train(features, tags, Options{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if ann.Clusters() > len(features) {
		t.Errorf("clusters %d exceed corpus size %d", ann.Clusters(), len(features))
	}
}
