// Enumeration surface: GET /v1/enumerations lists open-ended collection
// jobs, GET /v1/enumerations/{name} reports the growing result set with
// its live Chao92 completeness estimate, and the SSE route pushes one
// "batch" event per completed HIT batch, newly discovered items
// included. An enumeration IS a job underneath — submission goes
// through POST /v1/jobs with kind "enumeration", and lifecycle actions
// (cancel, unpark) stay on the /v1/jobs surface; this one speaks items
// and estimates.
package httpapi

import (
	"encoding/base64"
	"net/http"

	"cdas/api"
	"cdas/internal/enum"
	"cdas/internal/jobs"
	"cdas/internal/stats"
)

// EnumPublisher returns the enum.PublishFunc that feeds this server:
// every committed batch lands on the enumeration SSE surface and the
// published-state map GET /v1/enumerations serves from.
func (s *Server) EnumPublisher() enum.PublishFunc {
	return func(job jobs.Job, batch *enum.BatchResult, items []enum.Item, mark jobs.StreamMark, est stats.SpeciesEstimate, done bool) {
		s.PublishEnumBatch(enumStatusDTO(job, items, mark, est, done), enumBatchDTO(batch))
	}
}

// PublishEnumBatch records an enumeration's new state and fans it out:
// batch non-nil publishes a "batch" event, batch nil with st.Done a
// terminal "done" event.
func (s *Server) PublishEnumBatch(st api.EnumStatus, batch *api.EnumBatch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if batch != nil {
		st.LastBatch = batch
	} else if prev, ok := s.enums[st.Name]; ok && st.LastBatch == nil {
		st.LastBatch = prev.LastBatch
	}
	s.enums[st.Name] = st
	s.enumRevs[st.Name]++
	kind := api.EventBatch
	if batch == nil {
		kind = api.EventState
	}
	if st.Done {
		kind = api.EventDone
	}
	ev := feedEvent{rev: s.enumRevs[st.Name], kind: kind, data: api.EnumEvent{Batch: batch, State: st}}
	for sub := range s.enumSubs[st.Name] {
		sub.push(ev)
	}
}

// enumItemsDTO renders the discovered set onto the wire contract.
func enumItemsDTO(items []enum.Item) []api.EnumItem {
	if len(items) == 0 {
		return nil
	}
	out := make([]api.EnumItem, len(items))
	for i, it := range items {
		out[i] = api.EnumItem{Key: it.Key, Text: it.Text, Count: it.Count, Batch: it.Batch}
	}
	return out
}

// enumEstimateDTO renders a species estimate onto the wire contract.
func enumEstimateDTO(est stats.SpeciesEstimate) *api.EnumEstimate {
	return &api.EnumEstimate{
		Observed:     est.Observed,
		Samples:      est.Samples,
		Singletons:   est.Singletons,
		Coverage:     est.Coverage,
		CV2:          est.CV2,
		Total:        est.Total,
		Completeness: est.Completeness(),
	}
}

// enumBatchDTO renders one completed batch onto the wire contract.
func enumBatchDTO(b *enum.BatchResult) *api.EnumBatch {
	if b == nil {
		return nil
	}
	return &api.EnumBatch{
		Batch:         b.Batch,
		Contributions: b.Contributions,
		NewItems:      enumItemsDTO(b.NewItems),
		ExpectedNew:   b.ExpectedNew,
		Cost:          b.Cost,
	}
}

// enumStatusDTO renders the runner's cumulative view onto the wire.
func enumStatusDTO(job jobs.Job, items []enum.Item, mark jobs.StreamMark, est stats.SpeciesEstimate, done bool) api.EnumStatus {
	st := api.EnumStatus{
		Name:     job.Name,
		Keywords: job.Query.Keywords,
		State:    api.JobRunning,
		Batches:  mark.Window + 1,
		Distinct: len(items),
		Spent:    mark.Spent,
		Done:     done,
		Items:    enumItemsDTO(items),
	}
	if mark.Enum != nil {
		st.Contributions = mark.Enum.Contributions
		st.Stopped = mark.Enum.Stopped
	}
	if est.Samples > 0 {
		st.Estimate = enumEstimateDTO(est)
		st.Progress = est.Completeness()
	}
	if done {
		st.Progress = 1
	}
	return st
}

// enumStatus merges the job's lifecycle record with whatever the runner
// has published: an enumeration this process has never run still lists
// with its durably committed result set (rebuilt from the stream mark,
// estimate included), and a job that died before publishing still
// surfaces its terminal error.
func (s *Server) enumStatus(st jobs.Status) api.EnumStatus {
	s.mu.RLock()
	out, published := s.enums[st.Job.Name]
	ctl := s.jobsCtl
	s.mu.RUnlock()
	if !published {
		out = api.EnumStatus{
			Name:     st.Job.Name,
			Keywords: st.Job.Query.Keywords,
			Progress: st.Progress,
		}
		if marks, ok := ctl.(StreamMarks); ok {
			if mark, has := marks.StreamMarkFor(st.Job.Name); has {
				set := enum.RestoreResultSet(mark.Enum)
				est := set.Estimate()
				out = enumStatusDTO(st.Job, set.Items(), mark, est, false)
				out.Progress = st.Progress
			}
		}
	}
	out.State = api.JobState(st.State)
	if out.State.Terminal() {
		out.Done = true
		if out.Error == "" {
			out.Error = st.Error
		}
	}
	return out
}

// isEnum reports whether the status belongs to an enumeration job.
func isEnum(st jobs.Status) bool { return st.Job.Kind == jobs.KindEnumeration }

// v1ListEnums is GET /v1/enumerations: the paginated enumeration
// listing. It shares GET /v1/jobs's pagination contract — ?limit=,
// ?page_token= (the same validated opaque token), ?state= and ?tenant=
// — and sieves the indexed range down to enumeration jobs.
func (s *Server) v1ListEnums(w http.ResponseWriter, r *http.Request) {
	ctl, ok := s.requireJobs(w)
	if !ok {
		return
	}
	p, aerr := parseListJobs(r)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	out := api.EnumList{Enumerations: []api.EnumStatus{}}
	after := p.afterName
	for len(out.Enumerations) < p.limit {
		page, more := ctl.StatusesPage(after, p.limit, jobs.State(p.state), p.tenant)
		for _, st := range page {
			if !isEnum(st) {
				continue
			}
			out.Enumerations = append(out.Enumerations, s.enumStatus(st))
			if len(out.Enumerations) == p.limit {
				break
			}
		}
		if !more || len(page) == 0 {
			break
		}
		if len(out.Enumerations) == p.limit {
			out.NextPageToken = base64.RawURLEncoding.EncodeToString(
				[]byte(out.Enumerations[len(out.Enumerations)-1].Name))
			break
		}
		after = page[len(page)-1].Job.Name
	}
	writeJSON(w, out)
}

// lookupEnum resolves name to an enumeration job's status, writing the
// 404 envelope when it is unknown or not an enumeration.
func (s *Server) lookupEnum(w http.ResponseWriter, name string) (jobs.Status, bool) {
	ctl, ok := s.requireJobs(w)
	if !ok {
		return jobs.Status{}, false
	}
	st, found := ctl.Status(name)
	if !found || !isEnum(st) {
		writeError(w, api.NotFound("no such enumeration %q", name))
		return jobs.Status{}, false
	}
	return st, true
}

func (s *Server) v1GetEnum(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupEnum(w, r.PathValue("name"))
	if !ok {
		return
	}
	writeJSON(w, s.enumStatus(st))
}

// enumRev returns an enumeration's current published state and revision.
func (s *Server) enumRev(name string) (api.EnumStatus, int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.enums[name]
	return st, s.enumRevs[name], ok
}

// subscribeEnum registers an SSE watcher on an enumeration's feed.
func (s *Server) subscribeEnum(name string) *subscriber {
	s.mu.Lock()
	defer s.mu.Unlock()
	return subscribeIn(s.enumSubs, name)
}

func (s *Server) unsubscribeEnum(name string, sub *subscriber) {
	s.mu.Lock()
	defer s.mu.Unlock()
	unsubscribeIn(s.enumSubs, name, sub)
}

// v1EnumEvents is GET /v1/enumerations/{name}/events: an SSE stream
// pushing one "batch" event per completed HIT batch (newly discovered
// items and the refreshed estimate attached), a "state" replay on
// connect, and a terminal "done" event after which the server closes
// the stream. The same Last-Event-ID and dead-job synthesis rules as
// the query events route apply.
func (s *Server) v1EnumEvents(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := s.lookupEnum(w, name); !ok {
		return
	}
	s.runSSE(w, r, name,
		func() (*subscriber, func()) {
			sub := s.subscribeEnum(name)
			return sub, func() { s.unsubscribeEnum(name, sub) }
		},
		func(lastSeen int64, send func(feedEvent) bool) bool {
			cur, rev, published := s.enumRev(name)
			if published && (rev > lastSeen || cur.Done) {
				kind := api.EventState
				if cur.Done {
					kind = api.EventDone
				}
				return send(feedEvent{rev: rev, kind: kind, data: api.EnumEvent{State: cur}})
			}
			return true
		},
		func(st jobs.Status, send func(feedEvent) bool) {
			// The job is terminal but never published a done event (a
			// failure before the first batch, or a cancel): synthesize
			// one from the merged view so watchers never hang.
			final := s.enumStatus(st)
			final.Done = true
			_, rev, _ := s.enumRev(name)
			send(feedEvent{rev: rev, kind: api.EventDone, data: api.EnumEvent{State: final}})
		})
}
