// The versioned v1 surface: resource-oriented routes speaking the typed
// wire contract of the cdas/api package. Every error path here returns
// a structured api.Error envelope; GET /v1/jobs paginates and filters;
// the SSE stream lives in sse.go.
package httpapi

import (
	"encoding/base64"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
	"unicode/utf8"

	"cdas/api"
	"cdas/internal/core/aggregate"
	"cdas/internal/jobs"
)

// Pagination bounds for GET /v1/jobs.
const (
	defaultPageSize = 100
	maxPageSize     = 500
)

// unparkVerb is the custom-method suffix of POST /v1/jobs/{name}:unpark.
const unparkVerb = ":unpark"

func (s *Server) mountV1(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/healthz", s.v1Health)
	mux.HandleFunc("GET /v1/metrics", s.v1Metrics)
	mux.HandleFunc("GET /v1/scheduler", s.v1Scheduler)
	mux.HandleFunc("GET /v1/aggregators", s.v1Aggregators)
	mux.HandleFunc("GET /v1/queries", s.v1Queries)
	mux.HandleFunc("GET /v1/queries/{name}", s.v1Query)
	mux.HandleFunc("GET /v1/queries/{name}/events", s.v1QueryEvents)
	s.mountStreams(mux)
	mux.HandleFunc("POST /v1/jobs", s.v1SubmitJob)
	mux.HandleFunc("GET /v1/jobs", s.v1ListJobs)
	mux.HandleFunc("GET /v1/jobs/{name}", s.v1GetJob)
	mux.HandleFunc("DELETE /v1/jobs/{name}", s.v1CancelJob)
	// ServeMux wildcards span whole segments, so the AIP-style custom
	// method POST /v1/jobs/{name}:unpark arrives with "name:unpark" as
	// the segment; v1JobAction splits the verb off.
	mux.HandleFunc("POST /v1/jobs/{nameAction}", s.v1JobAction)
	// Everything else under /v1 is a structured 404, not a plain-text
	// mux miss.
	mux.HandleFunc("/v1/", s.v1NotFound)
}

func (s *Server) v1NotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, api.NotFound("no route %s %s", r.Method, r.URL.Path))
}

func (s *Server) v1Health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, api.Health{Status: "ok", Version: api.Version})
}

func (s *Server) v1Metrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	reg := s.counters
	s.mu.RUnlock()
	writeJSON(w, api.Metrics{Counters: reg.Snapshot()})
}

func (s *Server) v1Scheduler(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	sched := s.sched
	s.mu.RUnlock()
	if sched == nil {
		writeError(w, api.Unavailable("no scheduler attached"))
		return
	}
	st := sched.State()
	out := api.SchedulerState{
		Generations:        st.Generations,
		PendingJobs:        st.PendingJobs,
		DedupEnabled:       st.DedupEnabled,
		CacheEntries:       st.CacheEntries,
		CacheHits:          st.CacheHits,
		CacheMisses:        st.CacheMisses,
		QuestionsEnqueued:  st.QuestionsEnqueued,
		QuestionsPublished: st.QuestionsPublished,
		QuestionsDeduped:   st.QuestionsDeduped,
		BatchesPublished:   st.BatchesPublished,
		JobsAdmitted:       st.JobsAdmitted,
		JobsParked:         st.JobsParked,
		Budget: api.BudgetSnapshot{
			GlobalLimit: st.Budget.GlobalLimit,
			GlobalSpent: st.Budget.GlobalSpent,
		},
	}
	for _, line := range st.Budget.Jobs {
		out.Budget.Jobs = append(out.Budget.Jobs, api.JobBudgetLine{
			Job: line.Job, Limit: line.Limit, Spent: line.Spent,
		})
	}
	writeJSON(w, out)
}

// v1Aggregators serves the answer-aggregation registry: the discovery
// counterpart of JobSubmission.Aggregator, so clients can enumerate the
// methods before picking one.
func (s *Server) v1Aggregators(w http.ResponseWriter, _ *http.Request) {
	infos := aggregate.Infos()
	out := api.AggregatorList{
		Default:     aggregate.DefaultName,
		Aggregators: make([]api.AggregatorInfo, 0, len(infos)),
	}
	for _, info := range infos {
		out.Aggregators = append(out.Aggregators, api.AggregatorInfo{
			Name:         info.Name,
			Incremental:  info.Incremental,
			ResponseType: info.ResponseType,
			Description:  info.Description,
		})
	}
	writeJSON(w, out)
}

func (s *Server) v1Queries(w http.ResponseWriter, _ *http.Request) {
	out := api.QueryList{Queries: []QueryState{}}
	for _, n := range s.Names() {
		if st, ok := s.Get(n); ok {
			out.Queries = append(out.Queries, st)
		}
	}
	writeJSON(w, out)
}

func (s *Server) v1Query(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.Get(name)
	if !ok {
		writeError(w, api.NotFound("no such query %q", name))
		return
	}
	writeJSON(w, st)
}

// requireJobs fetches the controller or serves the 503 envelope.
func (s *Server) requireJobs(w http.ResponseWriter) (JobController, bool) {
	ctl := s.jobs()
	if ctl == nil {
		writeError(w, api.Unavailable("no job service attached"))
		return nil, false
	}
	return ctl, true
}

func (s *Server) v1SubmitJob(w http.ResponseWriter, r *http.Request) {
	s.submitJob(w, r, "/v1/jobs/")
}

// parseListJobs extracts and validates the pagination and filter
// parameters of GET /v1/jobs.
func parseListJobs(r *http.Request) (limit int, afterName string, state api.JobState, tenant string, err *api.Error) {
	q := r.URL.Query()
	limit = defaultPageSize
	if v := q.Get("limit"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 1 {
			return 0, "", "", "", api.InvalidArgument("limit must be a positive integer, got %q", v)
		}
		limit = min(n, maxPageSize)
	}
	if v := q.Get("page_token"); v != "" {
		raw, derr := base64.RawURLEncoding.DecodeString(v)
		if derr != nil {
			return 0, "", "", "", api.InvalidArgument("bad page_token %q", v)
		}
		// A token is always the base64 of a job name this server issued,
		// so its payload must satisfy the same rules submission enforces;
		// anything else is a forged or corrupted token, rejected rather
		// than passed to the index as an arbitrary range bound.
		afterName = string(raw)
		if !utf8.ValidString(afterName) || checkJobName(afterName) != nil {
			return 0, "", "", "", api.InvalidArgument("page_token %q does not decode to a valid job name", v)
		}
	}
	if v := q.Get("state"); v != "" {
		state = api.JobState(v)
		if !state.Valid() {
			return 0, "", "", "", api.InvalidArgument("unknown state filter %q", v)
		}
	}
	tenant = q.Get("tenant")
	return limit, afterName, state, tenant, nil
}

func (s *Server) v1ListJobs(w http.ResponseWriter, r *http.Request) {
	ctl, ok := s.requireJobs(w)
	if !ok {
		return
	}
	limit, afterName, state, tenant, aerr := parseListJobs(r)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	out := api.JobList{Jobs: []api.JobStatus{}}
	// One index range-read serves the page: names are index-ordered, so
	// the page token is the last returned name and a page picks up where
	// the previous one stopped even when jobs were inserted or removed
	// in between.
	page, more := ctl.StatusesPage(afterName, limit, jobs.State(state), tenant)
	for _, st := range page {
		out.Jobs = append(out.Jobs, s.jobStatus(st))
	}
	if more && len(out.Jobs) > 0 {
		out.NextPageToken = base64.RawURLEncoding.EncodeToString(
			[]byte(out.Jobs[len(out.Jobs)-1].Name))
	}
	writeJSON(w, out)
}

func (s *Server) v1GetJob(w http.ResponseWriter, r *http.Request) {
	ctl, ok := s.requireJobs(w)
	if !ok {
		return
	}
	name := r.PathValue("name")
	st, found := ctl.Status(name)
	if !found {
		writeError(w, api.NotFound("no such job %q", name))
		return
	}
	writeJSON(w, s.jobStatus(st))
}

func (s *Server) v1CancelJob(w http.ResponseWriter, r *http.Request) {
	ctl, ok := s.requireJobs(w)
	if !ok {
		return
	}
	name := r.PathValue("name")
	if err := ctl.Cancel(name); err != nil {
		writeError(w, jobError(err))
		return
	}
	st, _ := ctl.Status(name)
	writeJSON(w, s.jobStatus(st))
}

// v1JobAction dispatches AIP-style custom methods: POST
// /v1/jobs/{name}:verb. Only :unpark exists today.
func (s *Server) v1JobAction(w http.ResponseWriter, r *http.Request) {
	seg := r.PathValue("nameAction")
	name, verb, found := strings.Cut(seg, ":")
	if !found {
		writeError(w, api.NotFound("no route POST /v1/jobs/%s (custom methods use /v1/jobs/{name}:verb)", seg))
		return
	}
	if ":"+verb != unparkVerb {
		writeError(w, api.InvalidArgument("unknown action %q on job %q", verb, name))
		return
	}
	ctl, ok := s.requireJobs(w)
	if !ok {
		return
	}
	if err := ctl.Unpark(name); err != nil {
		writeError(w, jobError(err))
		return
	}
	st, _ := ctl.Status(name)
	writeJSON(w, s.jobStatus(st))
}

// jobError maps job-service errors onto the structured envelope.
func jobError(err error) *api.Error {
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		return api.NotFound("%v", err)
	case errors.Is(err, jobs.ErrDuplicateJob):
		return api.Conflict("%v", err)
	case errors.Is(err, jobs.ErrBadTransition):
		return api.Conflict("%v", err)
	default:
		return api.Internal("%v", err)
	}
}

// jobFromSubmission converts the wire submission into a jobs.Job
// (semantic validation happens at registration).
func jobFromSubmission(sub api.JobSubmission) (jobs.Job, error) {
	window, err := time.ParseDuration(sub.Window)
	if err != nil {
		return jobs.Job{}, fmt.Errorf("bad window %q: %w", sub.Window, err)
	}
	kind := jobs.Kind(sub.Kind)
	if sub.Kind == "" {
		kind = jobs.KindTSA
	}
	start := time.Now().UTC()
	if sub.Start != "" {
		start, err = time.Parse(time.RFC3339, sub.Start)
		if err != nil {
			return jobs.Job{}, fmt.Errorf("bad start %q (want RFC 3339): %w", sub.Start, err)
		}
	}
	return jobs.Job{
		Name:       sub.Name,
		Kind:       kind,
		Priority:   sub.Priority,
		Budget:     sub.Budget,
		Aggregator: sub.Aggregator,
		Tenant:     sub.Tenant,
		Query: jobs.Query{
			Keywords:         sub.Keywords,
			RequiredAccuracy: sub.RequiredAccuracy,
			Domain:           sub.Domain,
			Start:            start,
			Window:           window,
		},
	}, nil
}
