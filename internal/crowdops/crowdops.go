// Package crowdops implements crowd-powered relational operators on top
// of the CDAS engine: filter, compare/sort and join (entity resolution).
// These are the operator shapes of the crowd-enabled databases the paper
// positions CDAS among (CrowdDB, Qurk); CDAS's contribution — the
// quality-sensitive answering model — slots in underneath each operator,
// planning crowd sizes and verifying the answers.
//
// Every operator turns its relational question into crowd questions,
// processes them through an *engine.Engine (which handles prediction,
// golden sampling, verification and early termination), and interprets
// the accepted answers.
package crowdops

import (
	"errors"
	"fmt"
	"sort"

	"cdas/internal/crowd"
	"cdas/internal/engine"
)

// Item is a data item subject to crowd predicates.
type Item struct {
	ID   string
	Text string // what the worker sees
	// truth fields drive the simulator only.
	FilterTruth bool   // Filter: does the predicate hold?
	Key         string // Join: items with equal keys match
	Rank        int    // Sort: true order (lower = smaller)
	Difficulty  float64
}

// yes/no domain used by filter and join questions.
var boolDomain = []string{"yes", "no"}

func boolTruth(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// FilterResult is one item's crowd verdict.
type FilterResult struct {
	Item       Item
	Keep       bool
	Confidence float64
}

// Filter asks the crowd "does predicate hold for this item?" for every
// item and keeps those answered yes — CrowdDB's CROWDPROBE-style WHERE
// clause. golden supplies ground-truth questions for accuracy sampling.
func Filter(eng *engine.Engine, predicate string, items []Item, golden []crowd.Question) ([]FilterResult, error) {
	if eng == nil {
		return nil, errors.New("crowdops: engine is required")
	}
	if predicate == "" {
		return nil, errors.New("crowdops: predicate text is required")
	}
	if len(items) == 0 {
		return nil, nil
	}
	questions := make([]crowd.Question, len(items))
	byID := make(map[string]Item, len(items))
	for i, it := range items {
		q := crowd.Question{
			ID:         "filter/" + it.ID,
			Text:       fmt.Sprintf("%s — %s", predicate, it.Text),
			Domain:     boolDomain,
			Truth:      boolTruth(it.FilterTruth),
			Difficulty: it.Difficulty,
		}
		questions[i] = q
		byID[q.ID] = it
	}
	batches, err := eng.ProcessAll(questions, golden)
	if err != nil {
		return nil, err
	}
	out := make([]FilterResult, 0, len(items))
	for _, br := range batches {
		for _, qr := range br.Results {
			out = append(out, FilterResult{
				Item:       byID[qr.Question.ID],
				Keep:       qr.Answer == "yes",
				Confidence: qr.Confidence,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Item.ID < out[j].Item.ID })
	return out, nil
}

// JoinPair is one candidate match with the crowd's verdict.
type JoinPair struct {
	Left, Right Item
	Match       bool
	Confidence  float64
}

// Join performs crowd entity resolution over the cross product of left
// and right: every pair becomes a "do these refer to the same thing?"
// question (Qurk's crowd join). For n×m pairs the question count is nm —
// callers should pre-block large inputs; Join refuses more than maxPairs
// pairs to avoid accidental budget explosions.
const maxPairs = 2000

// Join runs the pairwise matching.
func Join(eng *engine.Engine, left, right []Item, golden []crowd.Question) ([]JoinPair, error) {
	if eng == nil {
		return nil, errors.New("crowdops: engine is required")
	}
	if len(left)*len(right) > maxPairs {
		return nil, fmt.Errorf("crowdops: %d candidate pairs exceed the %d-pair budget; block first",
			len(left)*len(right), maxPairs)
	}
	if len(left) == 0 || len(right) == 0 {
		return nil, nil
	}
	type pairKey struct{ l, r int }
	questions := make([]crowd.Question, 0, len(left)*len(right))
	keys := make(map[string]pairKey, len(left)*len(right))
	for li, l := range left {
		for ri, r := range right {
			id := fmt.Sprintf("join/%s/%s", l.ID, r.ID)
			questions = append(questions, crowd.Question{
				ID:         id,
				Text:       fmt.Sprintf("Do %q and %q refer to the same entity?", l.Text, r.Text),
				Domain:     boolDomain,
				Truth:      boolTruth(l.Key == r.Key),
				Difficulty: maxF(l.Difficulty, r.Difficulty),
			})
			keys[id] = pairKey{li, ri}
		}
	}
	batches, err := eng.ProcessAll(questions, golden)
	if err != nil {
		return nil, err
	}
	out := make([]JoinPair, 0, len(questions))
	for _, br := range batches {
		for _, qr := range br.Results {
			k := keys[qr.Question.ID]
			out = append(out, JoinPair{
				Left:       left[k.l],
				Right:      right[k.r],
				Match:      qr.Answer == "yes",
				Confidence: qr.Confidence,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Left.ID != out[j].Left.ID {
			return out[i].Left.ID < out[j].Left.ID
		}
		return out[i].Right.ID < out[j].Right.ID
	})
	return out, nil
}

// Matches filters a Join result to the accepted matches.
func Matches(pairs []JoinPair) []JoinPair {
	out := make([]JoinPair, 0, len(pairs))
	for _, p := range pairs {
		if p.Match {
			out = append(out, p)
		}
	}
	return out
}

// Sort orders items by crowd pairwise comparisons (Qurk's crowd order-by):
// every unordered pair becomes a "which is greater?" question, and items
// are ranked by their win count (Copeland score). Ties break by item ID
// for determinism. The comparison criterion is described by criterion
// (e.g. "which photo is sharper?").
func Sort(eng *engine.Engine, criterion string, items []Item, golden []crowd.Question) ([]Item, error) {
	if eng == nil {
		return nil, errors.New("crowdops: engine is required")
	}
	if len(items) < 2 {
		return append([]Item(nil), items...), nil
	}
	if len(items)*(len(items)-1)/2 > maxPairs {
		return nil, fmt.Errorf("crowdops: %d comparisons exceed the %d-pair budget",
			len(items)*(len(items)-1)/2, maxPairs)
	}
	type cmpKey struct{ a, b int }
	questions := make([]crowd.Question, 0, len(items)*(len(items)-1)/2)
	keys := make(map[string]cmpKey)
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			id := fmt.Sprintf("cmp/%s/%s", items[i].ID, items[j].ID)
			truth := "first"
			if items[j].Rank > items[i].Rank {
				truth = "second"
			}
			questions = append(questions, crowd.Question{
				ID:         id,
				Text:       fmt.Sprintf("%s — first: %q, second: %q", criterion, items[i].Text, items[j].Text),
				Domain:     []string{"first", "second"},
				Truth:      truth,
				Difficulty: maxF(items[i].Difficulty, items[j].Difficulty),
			})
			keys[id] = cmpKey{i, j}
		}
	}
	batches, err := eng.ProcessAll(questions, golden)
	if err != nil {
		return nil, err
	}
	// Copeland scoring: the item judged greater in a comparison earns a
	// win; ascending win counts give the ascending order.
	wins := make([]int, len(items))
	for _, br := range batches {
		for _, qr := range br.Results {
			k := keys[qr.Question.ID]
			if qr.Answer == "first" {
				wins[k.a]++
			} else {
				wins[k.b]++
			}
		}
	}
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		if wins[order[x]] != wins[order[y]] {
			return wins[order[x]] < wins[order[y]]
		}
		return items[order[x]].ID < items[order[y]].ID
	})
	out := make([]Item, len(items))
	for pos, idx := range order {
		out[pos] = items[idx]
	}
	return out, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
