package jobstore

// The crash-equivalence harness. A seeded generator produces op
// sequences (puts, deletes, atomic batches, checkpoints, compactions);
// the harness executes each sequence once per possible crash site —
// the Nth failpoint hit, for every N the crash-free execution performs
// — against a fresh directory, then reopens the store and asserts the
// recovered contents equal the in-memory reference model either
// before or after the in-flight op (batches are atomic: nothing in
// between is legal). Torn-write crashes are exercised at the
// torn-capable points. Finally the harness asserts every named
// failpoint was actually crashed at least once, so a refactor cannot
// silently move the durability boundary out from under the test.

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// crashOp is one generated operation.
type crashOp struct {
	kind string // "apply", "checkpoint", "compact"
	ops  []Op
}

// genOps builds a deterministic op sequence from seed. Keys come from
// a small pool so overwrites, deletes and tombstone shadowing all
// happen; values encode (seed, index) so any cross-wiring is visible.
func genOps(seed int64, n int) []crashOp {
	rng := rand.New(rand.NewSource(seed))
	var out []crashOp
	for i := 0; i < n; i++ {
		switch r := rng.Intn(100); {
		case r < 55: // single put
			out = append(out, crashOp{kind: "apply", ops: []Op{{
				Key:   fmt.Sprintf("k%02d", rng.Intn(16)),
				Value: []byte(fmt.Sprintf("s%d-i%d", seed, i)),
			}}})
		case r < 70: // single delete
			out = append(out, crashOp{kind: "apply", ops: []Op{{
				Key:    fmt.Sprintf("k%02d", rng.Intn(16)),
				Delete: true,
			}}})
		case r < 85: // multi-op atomic batch
			batch := make([]Op, 2+rng.Intn(3))
			for j := range batch {
				batch[j] = Op{
					Key:   fmt.Sprintf("k%02d", rng.Intn(16)),
					Value: []byte(fmt.Sprintf("s%d-i%d-j%d", seed, i, j)),
				}
				if rng.Intn(4) == 0 {
					batch[j].Value = nil
					batch[j].Delete = true
				}
			}
			out = append(out, crashOp{kind: "apply", ops: batch})
		case r < 95:
			out = append(out, crashOp{kind: "checkpoint"})
		default:
			out = append(out, crashOp{kind: "compact"})
		}
	}
	return out
}

// applyModel plays one op into the reference model.
func applyModel(m map[string]string, op crashOp) {
	for _, o := range op.ops {
		if o.Delete {
			delete(m, o.Key)
		} else {
			m[o.Key] = string(o.Value)
		}
	}
}

// crashAt is the failpoint hook: crash on the nth hit (1-based), with
// a torn write when torn is set and the point supports it. The mutex
// makes the hook safe for stores that flush in the background.
type crashAt struct {
	mu    sync.Mutex
	n     int
	torn  bool
	hits  int
	point string // which point actually crashed
}

func tornCapable(point string) bool {
	return point == FailWALWrite || point == FailRunWrite
}

func (c *crashAt) fn(point string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++
	if c.hits == c.n {
		c.point = point
		if c.torn && tornCapable(point) {
			return ErrTornWrite
		}
		return ErrInjectedCrash
	}
	return nil
}

func (c *crashAt) totalHits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

func (c *crashAt) crashedPoint() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.point
}

// runOps executes ops against a store in dir with the given hook,
// returning the index of the op that crashed (-1 if none) and any
// non-crash error.
func runOps(dir string, ops []crashOp, fail FailFunc) (crashed int, err error) {
	l, err := OpenLSM(LSMConfig{Dir: dir, MemtableBytes: 96, MaxRuns: 2, BlockSize: 64, Fail: fail})
	if err != nil {
		return -1, err
	}
	defer l.Close()
	for i, op := range ops {
		var opErr error
		switch op.kind {
		case "apply":
			opErr = l.Apply(op.ops)
		case "checkpoint":
			opErr = l.Checkpoint()
		case "compact":
			opErr = l.Compact()
		}
		if errors.Is(opErr, ErrInjectedCrash) {
			return i, nil
		}
		if opErr != nil {
			return -1, fmt.Errorf("op %d (%s): %w", i, op.kind, opErr)
		}
	}
	return -1, nil
}

// recoveredState reopens dir (no failpoints — the crash already
// happened) and returns the full recovered contents.
func recoveredState(t *testing.T, dir string) map[string]string {
	t.Helper()
	l, err := OpenLSM(LSMConfig{Dir: dir})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer l.Close()
	state := map[string]string{}
	err = l.Scan("", "", func(k string, v []byte) bool {
		state[k] = string(v)
		return true
	})
	if err != nil {
		t.Fatalf("recovery scan: %v", err)
	}
	return state
}

func TestLSMCrashEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is not short")
	}
	crashedPoints := map[string]bool{}
	for _, seed := range []int64{1, 2, 3} {
		for _, torn := range []bool{false, true} {
			ops := genOps(seed, 40)

			// Crash-free dry run counts the failpoint hits to sweep.
			counter := &crashAt{n: -1}
			if i, err := runOps(t.TempDir(), ops, counter.fn); i != -1 || err != nil {
				t.Fatalf("dry run crashed: op %d, err %v", i, err)
			}
			totalHits := counter.totalHits()
			if totalHits == 0 {
				t.Fatalf("seed %d produced no failpoint hits", seed)
			}

			for n := 1; n <= totalHits; n++ {
				dir := t.TempDir()
				crash := &crashAt{n: n, torn: torn}
				crashedAt, err := runOps(dir, ops, crash.fn)
				if err != nil {
					t.Fatalf("seed %d n %d: %v", seed, n, err)
				}
				if crashedAt == -1 {
					// Compaction scheduling can differ slightly once an
					// earlier trial's torn prefix shifts sizes; a run
					// that completes is simply a smaller sweep.
					continue
				}
				crashedPoints[crash.crashedPoint()] = true

				// Model state before and after the in-flight op: the
				// recovered store must be exactly one of the two.
				before := map[string]string{}
				for _, op := range ops[:crashedAt] {
					applyModel(before, op)
				}
				after := map[string]string{}
				for k, v := range before {
					after[k] = v
				}
				applyModel(after, ops[crashedAt])

				got := recoveredState(t, dir)
				if !reflect.DeepEqual(got, before) && !reflect.DeepEqual(got, after) {
					t.Fatalf("seed %d torn=%v crash at hit %d (%s, op %d %s):\nrecovered %v\nwant before %v\nor after  %v",
						seed, torn, n, crash.crashedPoint(), crashedAt, ops[crashedAt].kind, got, before, after)
				}

				// Recovery is a fixed point: reopening again changes
				// nothing, and the store stays writable.
				l, err := OpenLSM(LSMConfig{Dir: dir})
				if err != nil {
					t.Fatalf("second recovery: %v", err)
				}
				if err := l.Put("post-crash", []byte("ok")); err != nil {
					t.Fatalf("write after recovery: %v", err)
				}
				l.Close()
				again := recoveredState(t, dir)
				delete(again, "post-crash")
				if !reflect.DeepEqual(again, got) {
					t.Fatalf("seed %d n %d: recovery not a fixed point:\nfirst  %v\nsecond %v", seed, n, got, again)
				}
			}
		}
	}
	for _, p := range LSMFailpoints {
		if !crashedPoints[p] {
			t.Errorf("failpoint %s never crashed: the sweep lost coverage", p)
		}
	}
}
