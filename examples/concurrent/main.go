// Concurrent pipeline: process 120 questions as 8 overlapping HITs on the
// simulated platform, watch them finish out of order, then cancel a second
// pipeline mid-flight and show that outstanding assignments are never
// charged.
package main

import (
	"context"
	"fmt"
	"log"

	"cdas"
)

func questions(prefix string, n int) []cdas.CrowdQuestion {
	qs := make([]cdas.CrowdQuestion, n)
	for i := range qs {
		qs[i] = cdas.CrowdQuestion{
			ID:     fmt.Sprintf("%s%03d", prefix, i),
			Text:   fmt.Sprintf("Is tweet #%d positive about the movie?", i),
			Domain: []string{"pos", "neu", "neg"},
			Truth:  "pos",
		}
	}
	return qs
}

func main() {
	platform, sim, err := cdas.NewSimulatedPlatform(cdas.DefaultSimulatorConfig(42))
	if err != nil {
		log.Fatal(err)
	}
	// MaxInflightHITs > 1 turns ProcessAll/Stream into the concurrent
	// pipeline: up to 8 HITs are published and draining at once, and each
	// HIT's early termination is independent of its neighbours. Results
	// are still deterministic for a fixed seed — every HIT derives its
	// randomness from the engine seed and its batch index alone.
	eng, err := cdas.NewEngine(platform, nil, cdas.EngineConfig{
		JobName:         "concurrent-demo",
		HITSize:         20,
		Strategy:        cdas.ExpMax,
		MaxInflightHITs: 8,
		Seed:            42,
	})
	if err != nil {
		log.Fatal(err)
	}
	golden := questions("golden/", 12)

	// Stream delivers finished HITs in completion order.
	ch, err := eng.Stream(context.Background(), questions("q", 120), golden)
	if err != nil {
		log.Fatal(err)
	}
	for sr := range ch {
		if sr.Err != nil {
			log.Fatalf("batch %d: %v", sr.Index, sr.Err)
		}
		fmt.Printf("HIT %-28s (batch %d) done: %2d questions, %2d/%2d workers, $%.3f, early=%v\n",
			sr.Batch.HITID, sr.Index, len(sr.Batch.Results),
			sr.Batch.UsedWorkers, sr.Batch.PlannedWorkers, sr.Batch.Cost, sr.Batch.TerminatedEarly)
	}
	fmt.Printf("\ntotal simulated spend after pipeline 1: $%.3f\n\n", sim.TotalSpent())

	// Cancelling the context mid-pipeline cancels the published HITs;
	// their outstanding assignments are never delivered nor charged.
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel immediately: every batch is shed before or during its drain
	if _, err := eng.ProcessAllContext(ctx, questions("q", 120), golden); err != nil {
		fmt.Printf("pipeline 2 cancelled as requested: %v\n", err)
	}
	fmt.Printf("total simulated spend after cancelled pipeline: $%.3f\n", sim.TotalSpent())
}
