package experiments

import (
	"fmt"
	"math"

	"cdas/internal/core/prediction"
	"cdas/internal/stats"
)

// Figure14 contrasts the distribution of workers' real (task) accuracy
// with their platform approval rate, in 5-point bins from 25% to 100%.
func Figure14(seed uint64) (Table, error) {
	platform, err := newPlatform(seed, 500)
	if err != nil {
		return Table{}, err
	}
	accHist := stats.NewHistogram(25, 100, 15)
	appHist := stats.NewHistogram(25, 100, 15)
	for _, w := range platform.Workers() {
		accHist.Add(100 * w.Accuracy)
		appHist.Add(100 * w.ApprovalRate)
	}
	tbl := Table{
		ID:      "fig14",
		Title:   "Worker real accuracy vs approval rate (percentage of workers per bin)",
		Columns: []string{"bin", "real accuracy", "approval rate"},
		Notes:   "approval rates cluster at 95-100 while real accuracy spreads broadly",
	}
	accFr, appFr := accHist.Fractions(), appHist.Fractions()
	for i := len(accFr) - 1; i >= 0; i-- {
		tbl.Rows = append(tbl.Rows, []string{accHist.BinLabel(i), fmtPct(accFr[i]), fmtPct(appFr[i])})
	}
	return tbl, nil
}

// samplingSetup collects one 60-worker HIT with 100 golden questions so
// sampling rates can be replayed as prefixes of the golden set.
func samplingSetup(seed uint64) (*collected, error) {
	questions, golden, err := tsaWorkload(seed, mustNoHardMovies(), 50, 100)
	if err != nil {
		return nil, err
	}
	platform, err := newPlatform(seed+1, 300)
	if err != nil {
		return nil, err
	}
	return collect(platform, questions[:100], golden, 60)
}

// estimatesAtRate recomputes every worker's accuracy estimate using only
// the first rate×|golden| golden questions.
func estimatesAtRate(c *collected, rate float64) map[string]float64 {
	g := int(math.Ceil(rate * float64(len(c.golden))))
	out := make(map[string]float64, len(c.assignments))
	for _, a := range c.assignments {
		out[a.Worker.ID] = c.estimateWith(a, g)
	}
	return out
}

// Figure15 tracks the mean estimated accuracy and the mean absolute
// estimation error as the sampling rate grows; estimates stabilise from
// ~10-20%.
func Figure15(seed uint64) (Table, error) {
	c, err := samplingSetup(seed)
	if err != nil {
		return Table{}, err
	}
	full := estimatesAtRate(c, 1.0)
	tbl := Table{
		ID:      "fig15",
		Title:   "Effect of sampling rate on estimated worker accuracy",
		Columns: []string{"sampling rate", "mean accuracy", "avg abs error"},
		Notes:   "mean stays near the 100% value; error approaches 0 with rate",
	}
	for _, rate := range []float64{0.05, 0.10, 0.20, 0.40, 0.60, 0.80, 1.00} {
		est := estimatesAtRate(c, rate)
		var mean, errSum float64
		for w, a := range est {
			mean += a
			errSum += math.Abs(a - full[w])
		}
		n := float64(len(est))
		tbl.Rows = append(tbl.Rows, []string{
			fmtPct(rate), fmtF(mean / n), fmtF(errSum / n),
		})
	}
	return tbl, nil
}

// Figure16 measures verification accuracy when vote weights come from
// estimates at different sampling rates, across required accuracies.
func Figure16(seed uint64) (Table, error) {
	c, err := samplingSetup(seed)
	if err != nil {
		return Table{}, err
	}
	model, err := prediction.New(stats.ClampProb(c.muEst))
	if err != nil {
		// An uninformative sampled mean would break planning; fall back
		// to the fallback prior, as the engine does.
		model, err = prediction.New(0.7)
		if err != nil {
			return Table{}, err
		}
	}
	rates := []float64{0.05, 0.10, 0.15, 0.20, 1.00}
	tbl := Table{
		ID:      "fig16",
		Title:   "Effect of sampling rate on verification accuracy",
		Columns: []string{"required", "rate=5%", "rate=10%", "rate=15%", "rate=20%", "rate=100%"},
		Notes:   ">=20% sampling tracks the 100% curve and meets the requirement",
	}
	for req := 0.65; req <= 0.951; req += 0.05 {
		n, err := model.RequiredWorkers(req)
		if err != nil {
			return Table{}, err
		}
		row := []string{fmt.Sprintf("%.2f", req)}
		for _, rate := range rates {
			est := estimatesAtRate(c, rate)
			acc, _ := c.evalWindows(modelVerification, n, est)
			row = append(row, fmtF(acc))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}
