// Verified-answer cache: the scheduler consults it before publishing
// anything to the crowd, so a question any job has already paid to
// verify is answered for free until its entry expires.
package scheduler

import (
	"sync"
	"time"

	"cdas/internal/textutil"
)

// cacheStripes is the shard count: a power of two so the key-hash fold
// is a mask. Keys are already uniform SHA-256 prefixes, so the hash
// spreads evenly.
const cacheStripes = 16

// CachedAnswer is one verified result held by the cache.
type CachedAnswer struct {
	// Answer is the accepted answer and Confidence its Equation 4
	// confidence at acceptance time.
	Answer     string
	Confidence float64
	// Votes is how many worker votes backed the acceptance.
	Votes int
	// StoredAt is the cache admission time (the scheduler's clock).
	StoredAt time.Time
}

// AnswerCache maps canonical question keys to verified answers with a
// TTL. It is safe for concurrent use and sharded internally so lookups
// for different keys do not serialise on one lock — the flush path
// probes it once per enqueued question, and a State or Sweep poll must
// not stall a generation. A zero TTL never expires entries — the right
// setting for deterministic simulations, where wall-clock expiry would
// make reruns diverge.
type AnswerCache struct {
	ttl time.Duration
	now func() time.Time

	stripes [cacheStripes]cacheStripe
}

type cacheStripe struct {
	mu      sync.Mutex
	entries map[string]CachedAnswer
}

// NewAnswerCache builds a cache. now may be nil (defaults to time.Now);
// inject a fixed clock for deterministic runs.
func NewAnswerCache(ttl time.Duration, now func() time.Time) *AnswerCache {
	if now == nil {
		now = time.Now
	}
	c := &AnswerCache{ttl: ttl, now: now}
	for i := range c.stripes {
		c.stripes[i].entries = make(map[string]CachedAnswer)
	}
	return c
}

// stripeFor picks the shard owning key (allocation-free FNV-1a on the
// per-question probe path).
func (c *AnswerCache) stripeFor(key string) *cacheStripe {
	return &c.stripes[textutil.Hash32(key)&(cacheStripes-1)]
}

// Get returns the live entry for key. Expired entries are dropped on
// access and reported as misses.
func (c *AnswerCache) Get(key string) (CachedAnswer, bool) {
	st := c.stripeFor(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[key]
	if !ok {
		return CachedAnswer{}, false
	}
	if c.expired(e) {
		delete(st.entries, key)
		return CachedAnswer{}, false
	}
	return e, true
}

// Put stores (or refreshes) a verified answer under key.
func (c *AnswerCache) Put(key string, answer string, confidence float64, votes int) {
	st := c.stripeFor(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.entries[key] = CachedAnswer{
		Answer:     answer,
		Confidence: confidence,
		Votes:      votes,
		StoredAt:   c.now(),
	}
}

// Len reports the number of stored entries, expired ones included until
// their next access or Sweep.
func (c *AnswerCache) Len() int {
	n := 0
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		n += len(st.entries)
		st.mu.Unlock()
	}
	return n
}

// Sweep drops every expired entry and reports how many were removed.
func (c *AnswerCache) Sweep() int {
	removed := 0
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		for k, e := range st.entries {
			if c.expired(e) {
				delete(st.entries, k)
				removed++
			}
		}
		st.mu.Unlock()
	}
	return removed
}

// expired reports whether e has outlived the TTL. Callers hold the
// owning stripe's lock.
func (c *AnswerCache) expired(e CachedAnswer) bool {
	return c.ttl > 0 && c.now().Sub(e.StoredAt) >= c.ttl
}
