package standing

import (
	"fmt"
	"math"
	"time"

	"cdas/internal/crowd"
	"cdas/internal/exec"
	"cdas/internal/jobs"
	"cdas/internal/randx"
	"cdas/internal/textgen"
	"cdas/internal/tsa"
)

// Source feeds a standing query's items in arrival order. Event time
// lives on the item (exec.Item.At); arrival order need not match it —
// out-of-order event times are exactly what the watermark exists for.
type Source interface {
	// Next returns the next arrival, or ok=false when the stream is
	// exhausted. A finite source ends the standing query; a live source
	// blocks until an item arrives or its feed closes.
	Next() (item exec.Item, ok bool)
}

// SliceSource replays a fixed arrival sequence; tests and the demo use
// it directly.
type SliceSource struct {
	items []exec.Item
	pos   int
}

// NewSliceSource wraps items (not copied) as a Source.
func NewSliceSource(items []exec.Item) *SliceSource {
	return &SliceSource{items: items}
}

// Next implements Source.
func (s *SliceSource) Next() (exec.Item, bool) {
	if s.pos >= len(s.items) {
		return exec.Item{}, false
	}
	it := s.items[s.pos]
	s.pos++
	return it, true
}

// Convert turns a stream item into the crowd question the engine
// publishes — the same shape as stream.Convert, declared here so the
// one-shot and standing layers stay import-independent.
type Convert func(exec.Item) crowd.Question

// SourceFactory builds the arrival source and question mapping for a
// continuous job. The server installs one (TextgenSource by default);
// tests substitute scripted sources.
type SourceFactory func(job jobs.Job) (Source, Convert, error)

// Textgen source defaults, applied when the StreamSpec leaves the
// corresponding field zero.
const (
	defaultSourceItems = 64
	defaultSourceRate  = 1.0 // items per second of event time
)

// TextgenSource synthesises a finite tweet stream for a continuous job:
// Stream.Items tweets about the query's keywords, interleaved across
// movies, with event times following seeded exponential inter-arrival
// gaps (rate Stream.Rate) from Query.Start. Every seventh pair of
// adjacent event times is swapped — arrival order stays put — so any
// run exercises the out-of-order path without depending on wall-clock
// scheduling. Identical (keywords, seed, items, rate) specs produce
// bit-identical streams, which is what lets overlapping standing
// queries dedup in the scheduler and closed-loop runs hash-compare.
func TextgenSource(job jobs.Job) (Source, Convert, error) {
	if job.Stream == nil {
		return nil, nil, fmt.Errorf("standing: job %q has no stream spec", job.Name)
	}
	if len(job.Query.Keywords) == 0 {
		return nil, nil, fmt.Errorf("standing: job %q has no keywords to stream about", job.Name)
	}
	if err := tsa.ValidateDomain(job.Query.Domain); err != nil {
		return nil, nil, err
	}
	spec := *job.Stream
	if spec.Items == 0 {
		spec.Items = defaultSourceItems
	}
	if spec.Rate == 0 {
		spec.Rate = defaultSourceRate
	}
	perMovie := (spec.Items + len(job.Query.Keywords) - 1) / len(job.Query.Keywords)
	tweets, err := textgen.Generate(textgen.Config{
		Seed:           spec.SourceSeed,
		Movies:         job.Query.Keywords,
		TweetsPerMovie: perMovie,
		Start:          job.Query.Start,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("standing: generating stream for %q: %w", job.Name, err)
	}
	tweets = interleave(tweets, len(job.Query.Keywords), perMovie)
	if len(tweets) > spec.Items {
		tweets = tweets[:spec.Items]
	}

	rng := randx.New(spec.SourceSeed).Split("standing/arrivals")
	items := make([]exec.Item, len(tweets))
	byID := make(map[string]textgen.Tweet, len(tweets))
	at := job.Query.Start
	for i, t := range tweets {
		gap := rng.Exp(spec.Rate)
		at = at.Add(time.Duration(math.Ceil(gap * float64(time.Second))))
		items[i] = exec.Item{ID: t.ID, Text: t.Text, At: at}
		byID[t.ID] = t
	}
	for i := 3; i < len(items); i += 7 {
		items[i-1].At, items[i].At = items[i].At, items[i-1].At
	}

	domain := append([]string(nil), job.Query.Domain...)
	convert := func(it exec.Item) crowd.Question {
		t, ok := byID[it.ID]
		if !ok {
			return crowd.Question{ID: it.ID, Text: it.Text, Domain: domain}
		}
		q := t.Question()
		q.Domain = append([]string(nil), domain...)
		return q
	}
	return NewSliceSource(items), convert, nil
}

// interleave reorders movie-major generated tweets round-robin across
// movies so a truncated stream still mentions every keyword.
func interleave(tweets []textgen.Tweet, movies, perMovie int) []textgen.Tweet {
	if movies <= 1 {
		return tweets
	}
	out := make([]textgen.Tweet, 0, len(tweets))
	for i := 0; i < perMovie; i++ {
		for m := 0; m < movies; m++ {
			idx := m*perMovie + i
			if idx < len(tweets) {
				out = append(out, tweets[idx])
			}
		}
	}
	return out
}
