// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) on the simulated substrate. Each experiment is a
// deterministic function of a seed, returns a typed result, and can render
// itself as an aligned text table whose rows mirror what the paper plots.
//
// The per-experiment index in DESIGN.md maps each figure to its generator
// here, and EXPERIMENTS.md records paper-vs-measured shapes.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a rendered experiment result: the series the paper plots.
type Table struct {
	ID      string // "fig6", "table4", ...
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string // shape expectation being demonstrated
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Generator produces one experiment's table under a seed.
type Generator func(seed uint64) (Table, error)

// registry maps experiment IDs to generators, in paper order.
var registry = []struct {
	id  string
	gen Generator
}{
	{"table4", Table4},
	{"fig5", Figure5},
	{"fig6", Figure6},
	{"fig7", Figure7},
	{"fig8", Figure8},
	{"fig9", Figure9},
	{"fig10", Figure10},
	{"fig11", Figure11},
	{"fig12", Figure12},
	{"fig13", Figure13},
	{"fig14", Figure14},
	{"fig15", Figure15},
	{"fig16", Figure16},
	{"fig17", Figure17},
	{"fig18", Figure18},
}

// IDs lists all experiment IDs in paper order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Lookup returns the generator for an experiment ID.
func Lookup(id string) (Generator, bool) {
	for _, e := range registry {
		if e.id == id {
			return e.gen, true
		}
	}
	return nil, false
}

// RunAll executes every experiment with the given base seed and returns
// the tables in paper order, stopping at the first error.
func RunAll(seed uint64) ([]Table, error) {
	out := make([]Table, 0, len(registry))
	for _, e := range registry {
		tbl, err := e.gen(seed)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", e.id, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// fmtF renders a float with 3 decimals (the paper's precision).
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }

// fmtPct renders a ratio as a percentage with one decimal.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
